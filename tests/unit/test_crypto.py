"""Tests for repro.crypto: primitives, cipher, key manager, MLE schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    ConfigurationError,
    IntegrityError,
    RateLimitExceeded,
)
from repro.crypto.cipher import (
    BLOCK_SIZE,
    BlockCipher,
    ciphertext_blocks,
    pad,
    unpad,
)
from repro.crypto.keymanager import KeyManager, RateLimiter
from repro.crypto.mle import (
    CiphertextChunk,
    ConvergentEncryption,
    KeyRecipe,
    ServerAidedMLE,
)
from repro.crypto.primitives import hkdf_expand, hmac_digest, prf_stream

KEY = b"k" * 32


class TestPrimitives:
    def test_prf_stream_deterministic(self):
        assert prf_stream(KEY, b"n", 100) == prf_stream(KEY, b"n", 100)

    def test_prf_stream_key_separation(self):
        assert prf_stream(KEY, b"n", 64) != prf_stream(b"j" * 32, b"n", 64)

    def test_prf_stream_nonce_separation(self):
        assert prf_stream(KEY, b"a", 64) != prf_stream(KEY, b"b", 64)

    @pytest.mark.parametrize("length", [0, 1, 63, 64, 65, 1000])
    def test_prf_stream_lengths(self, length):
        assert len(prf_stream(KEY, b"n", length)) == length

    def test_prf_stream_prefix_stable(self):
        # Requesting a longer stream must extend, not change, the prefix.
        assert prf_stream(KEY, b"n", 200)[:50] == prf_stream(KEY, b"n", 50)

    def test_prf_stream_negative_length(self):
        with pytest.raises(ValueError):
            prf_stream(KEY, b"n", -1)

    def test_hkdf_expand_lengths_and_separation(self):
        a = hkdf_expand(KEY, b"purpose-a")
        b = hkdf_expand(KEY, b"purpose-b")
        assert len(a) == 32
        assert a != b
        assert hkdf_expand(KEY, b"purpose-a", 64)[:32] == a

    def test_hmac_digest_deterministic(self):
        assert hmac_digest(KEY, b"m") == hmac_digest(KEY, b"m")


class TestPadding:
    @given(st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_pad_unpad_roundtrip(self, data):
        padded = pad(data)
        assert len(padded) % BLOCK_SIZE == 0
        assert len(padded) > len(data)
        assert unpad(padded) == data

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(IntegrityError):
            unpad(b"short")

    def test_unpad_rejects_corrupt_padding(self):
        padded = bytearray(pad(b"hello"))
        padded[-1] = 200  # invalid pad length byte
        with pytest.raises(IntegrityError):
            unpad(bytes(padded))

    def test_ciphertext_blocks(self):
        assert ciphertext_blocks(0) == 1
        assert ciphertext_blocks(15) == 1
        assert ciphertext_blocks(16) == 2
        assert ciphertext_blocks(4096) == 257

    def test_ciphertext_blocks_matches_actual_encryption(self):
        cipher = BlockCipher()
        for size in (0, 1, 15, 16, 17, 100, 4096):
            ciphertext = cipher.encrypt(KEY, b"x" * size)
            assert len(ciphertext) // BLOCK_SIZE == ciphertext_blocks(size)


class TestBlockCipher:
    @given(st.binary(max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, data):
        cipher = BlockCipher()
        assert cipher.decrypt(KEY, cipher.encrypt(KEY, data)) == data

    def test_deterministic(self):
        cipher = BlockCipher()
        assert cipher.encrypt(KEY, b"data") == cipher.encrypt(KEY, b"data")

    def test_key_separation(self):
        cipher = BlockCipher()
        assert cipher.encrypt(KEY, b"data") != cipher.encrypt(b"x" * 32, b"data")

    def test_wrong_key_fails_or_garbles(self):
        cipher = BlockCipher()
        ciphertext = cipher.encrypt(KEY, b"some plaintext bytes")
        try:
            wrong = cipher.decrypt(b"w" * 32, ciphertext)
            assert wrong != b"some plaintext bytes"
        except IntegrityError:
            pass  # padding check caught it — also fine

    def test_empty_key_rejected(self):
        cipher = BlockCipher()
        with pytest.raises(ConfigurationError):
            cipher.encrypt(b"", b"data")


class TestRateLimiter:
    def test_burst_then_block(self):
        limiter = RateLimiter(rate=1.0, burst=3.0)
        assert all(limiter.try_acquire() for _ in range(3))
        assert not limiter.try_acquire()

    def test_refill_with_logical_clock(self):
        limiter = RateLimiter(rate=2.0, burst=2.0)
        limiter.try_acquire()
        limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.advance(1.0)  # refills 2 tokens
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()

    def test_bucket_does_not_exceed_burst(self):
        limiter = RateLimiter(rate=100.0, burst=2.0)
        limiter.advance(100.0)
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RateLimiter(rate=0, burst=1)
        with pytest.raises(ConfigurationError):
            RateLimiter(rate=1, burst=0)

    def test_cannot_rewind_clock(self):
        limiter = RateLimiter(rate=1, burst=1)
        with pytest.raises(ConfigurationError):
            limiter.advance(-1)


class TestKeyManager:
    def test_deterministic_keys(self):
        manager = KeyManager(b"s" * 32)
        assert manager.derive_key(b"fp1") == manager.derive_key(b"fp1")

    def test_distinct_fingerprints_distinct_keys(self):
        manager = KeyManager(b"s" * 32)
        assert manager.derive_key(b"fp1") != manager.derive_key(b"fp2")

    def test_distinct_secrets_distinct_keys(self):
        a = KeyManager(b"a" * 32)
        b = KeyManager(b"b" * 32)
        assert a.derive_key(b"fp") != b.derive_key(b"fp")

    def test_verify_key(self):
        manager = KeyManager(b"s" * 32)
        key = manager.derive_key(b"fp")
        assert manager.verify_key(b"fp", key)
        assert not manager.verify_key(b"fp", b"\x00" * 32)

    def test_rate_limited_brute_force(self):
        limiter = RateLimiter(rate=1.0, burst=5.0)
        manager = KeyManager(b"s" * 32, rate_limiter=limiter)
        served = 0
        rejected = 0
        for candidate in range(20):  # online brute-force attempt
            try:
                manager.derive_key(str(candidate).encode())
                served += 1
            except RateLimitExceeded:
                rejected += 1
        assert served == 5
        assert rejected == 15
        assert manager.queries_served == 5
        assert manager.queries_rejected == 15

    def test_short_secret_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyManager(b"short")


class TestMLESchemes:
    @pytest.mark.parametrize("scheme_name", ["convergent", "server-aided"])
    def test_determinism_enables_dedup(self, scheme_name):
        scheme = self._scheme(scheme_name)
        chunk_a, key_a = scheme.encrypt_chunk(b"same content")
        chunk_b, key_b = scheme.encrypt_chunk(b"same content")
        assert chunk_a.data == chunk_b.data
        assert chunk_a.tag == chunk_b.tag
        assert key_a == key_b

    @pytest.mark.parametrize("scheme_name", ["convergent", "server-aided"])
    def test_roundtrip(self, scheme_name):
        scheme = self._scheme(scheme_name)
        chunk, key = scheme.encrypt_chunk(b"secret payload")
        assert scheme.decrypt_chunk(chunk, key) == b"secret payload"

    def test_different_content_different_ciphertext(self):
        scheme = ConvergentEncryption()
        a, _ = scheme.encrypt_chunk(b"content-a")
        b, _ = scheme.encrypt_chunk(b"content-b")
        assert a.tag != b.tag

    def test_tamper_detection(self):
        scheme = ConvergentEncryption()
        chunk, key = scheme.encrypt_chunk(b"payload")
        tampered = CiphertextChunk(
            data=chunk.data[:-1] + bytes([chunk.data[-1] ^ 1]), tag=chunk.tag
        )
        with pytest.raises(IntegrityError):
            scheme.decrypt_chunk(tampered, key)

    def test_convergent_vs_server_aided_differ(self):
        convergent = ConvergentEncryption()
        aided = self._scheme("server-aided")
        a, _ = convergent.encrypt_chunk(b"content")
        b, _ = aided.encrypt_chunk(b"content")
        assert a.data != b.data

    def test_ciphertext_is_block_padded(self):
        scheme = ConvergentEncryption()
        chunk, _ = scheme.encrypt_chunk(b"x" * 100)
        assert chunk.size % BLOCK_SIZE == 0
        assert chunk.size == 112  # 100 -> 7 blocks

    @staticmethod
    def _scheme(name):
        if name == "convergent":
            return ConvergentEncryption()
        return ServerAidedMLE(KeyManager(b"s" * 32))


class TestKeyRecipe:
    def test_seal_unseal_roundtrip(self):
        recipe = KeyRecipe()
        recipe.add(b"\x01" * 32)
        recipe.add(b"\x02" * 32)
        sealed = recipe.seal(b"user-secret")
        restored = KeyRecipe.unseal(sealed, b"user-secret")
        assert restored.keys == recipe.keys

    def test_wrong_user_secret_rejected(self):
        recipe = KeyRecipe(keys=[b"\x01" * 32])
        sealed = recipe.seal(b"alice")
        with pytest.raises(IntegrityError):
            KeyRecipe.unseal(sealed, b"mallory")

    def test_len(self):
        recipe = KeyRecipe()
        assert len(recipe) == 0
        recipe.add(b"k")
        assert len(recipe) == 1
