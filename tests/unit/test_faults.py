"""Tests for the deterministic fault-injection plane (repro.faults)."""

import json

import pytest

from repro import faults
from repro.common.errors import ConfigurationError
from repro.faults import (
    FaultPlan,
    FaultRule,
    Injector,
    backoff_delay,
    load_plan,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No test leaves a plan installed for the rest of the suite."""
    faults.clear()
    yield
    faults.clear()


def plan(*rules, seed=0):
    return FaultPlan(
        seed=seed, rules=tuple(FaultRule.from_dict(rule) for rule in rules)
    )


class TestRuleSchema:
    def test_roundtrip_preserves_triggers_and_params(self):
        raw = {
            "site": "node.kill",
            "at": 5,
            "times": 1,
            "node": 2,
            "match": {"kind": "upload_batch"},
        }
        rule = FaultRule.from_dict(raw)
        assert rule.site == "node.kill"
        assert rule.at == 5
        assert rule.times == 1
        assert rule.match == {"kind": "upload_batch"}
        # Non-trigger keys ride along as free-form action params.
        assert rule.params == {"node": 2}
        assert rule.to_dict() == raw

    def test_plan_roundtrip(self):
        original = plan(
            {"site": "serve.drop", "every": 37},
            {"site": "client.drop", "probability": 0.25, "times": 3},
            seed=11,
        )
        assert FaultPlan.from_dict(original.to_dict()) == original

    @pytest.mark.parametrize(
        "raw",
        [
            {},  # no site
            {"site": "x", "at": 0},
            {"site": "x", "every": 0},
            {"site": "x", "after": -1},
            {"site": "x", "probability": 1.5},
            {"site": "x", "times": 0},
            {"site": "x", "match": "not-a-dict"},
        ],
    )
    def test_invalid_rules_refused(self, raw):
        with pytest.raises(ConfigurationError):
            FaultRule.from_dict(raw)

    def test_load_plan_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"seed": 9, "rules": [{"site": "serve.stall", "at": 2}]}
            )
        )
        loaded = load_plan(path)
        assert loaded.seed == 9
        assert loaded.rules[0].site == "serve.stall"

    def test_load_plan_rejects_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_plan(path)


class TestTriggers:
    def fired_events(self, injector, site, count, **tags):
        return [
            event
            for event in range(1, count + 1)
            if injector.fire(site, **tags) is not None
        ]

    def test_at_fires_exactly_once(self):
        injector = Injector(plan({"site": "s", "at": 3}))
        assert self.fired_events(injector, "s", 10) == [3]

    def test_every_fires_periodically(self):
        injector = Injector(plan({"site": "s", "every": 4}))
        assert self.fired_events(injector, "s", 12) == [4, 8, 12]

    def test_after_fires_on_every_later_event(self):
        injector = Injector(plan({"site": "s", "after": 7}))
        assert self.fired_events(injector, "s", 10) == [8, 9, 10]

    def test_times_caps_firings(self):
        injector = Injector(plan({"site": "s", "every": 2, "times": 2}))
        assert self.fired_events(injector, "s", 10) == [2, 4]

    def test_sites_count_independently(self):
        injector = Injector(plan({"site": "a", "at": 2}, {"site": "b", "at": 2}))
        assert injector.fire("a") is None
        assert injector.fire("b") is None
        assert injector.fire("a") is not None
        assert injector.fire("b") is not None

    def test_match_filters_on_tags(self):
        injector = Injector(
            plan({"site": "s", "match": {"kind": "upload_batch"}, "times": 1})
        )
        assert injector.fire("s", kind="restore") is None
        assert injector.fire("s", kind="upload_batch") is not None

    def test_first_matching_rule_wins_and_params_flow(self):
        injector = Injector(
            plan(
                {"site": "s", "at": 2, "mode": "exit"},
                {"site": "s", "mode": "raise"},
            )
        )
        first = injector.fire("s")
        second = injector.fire("s")
        assert first.get("mode") == "raise"  # rule 0 requires event 2
        assert second.get("mode") == "exit"
        assert second.rule_index == 0

    def test_probability_is_deterministic_across_injectors(self):
        schedule = plan({"site": "s", "probability": 0.3}, seed=42)
        left = Injector(schedule)
        right = Injector(schedule)
        fired_left = [left.fire("s") is not None for _ in range(200)]
        fired_right = [right.fire("s") is not None for _ in range(200)]
        assert fired_left == fired_right
        assert 20 < sum(fired_left) < 120  # p=0.3 over 200 events

    def test_probability_depends_on_seed(self):
        base = {"site": "s", "probability": 0.3}
        left = Injector(plan(dict(base), seed=1))
        right = Injector(plan(dict(base), seed=2))
        assert [left.fire("s") is not None for _ in range(200)] != [
            right.fire("s") is not None for _ in range(200)
        ]

    def test_summary_accounts_events_and_firings(self):
        injector = Injector(plan({"site": "s", "every": 2}))
        for _ in range(5):
            injector.fire("s")
        injector.fire("other")
        summary = injector.summary()
        assert summary["sites"]["s"] == {"events": 5, "fired": 2}
        assert summary["sites"]["other"] == {"events": 1, "fired": 0}
        assert summary["rules"][0]["fired"] == 2


class TestGlobalSwitchboard:
    def test_fire_is_noop_without_plan(self):
        assert faults.active() is None
        assert faults.fire("anything") is None

    def test_install_and_clear(self):
        injector = faults.install(plan({"site": "s", "at": 1}))
        assert faults.active() is injector
        assert faults.fire("s") is not None
        faults.clear()
        assert faults.active() is None
        assert faults.fire("s") is None


class TestBackoff:
    def test_deterministic_for_same_key(self):
        delays = [backoff_delay(a, seed=3, key="rid-1") for a in range(5)]
        again = [backoff_delay(a, seed=3, key="rid-1") for a in range(5)]
        assert delays == again

    def test_grows_exponentially_then_caps(self):
        base, cap = 0.01, 0.25
        for attempt in range(10):
            delay = backoff_delay(attempt, base=base, cap=cap, key="k")
            ceiling = min(cap, base * 2**attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_jitter_varies_by_key(self):
        assert backoff_delay(2, key="a") != backoff_delay(2, key="b")

    def test_negative_attempt_refused(self):
        with pytest.raises(ConfigurationError):
            backoff_delay(-1)
