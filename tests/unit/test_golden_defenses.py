"""Golden byte-identity for the defended schemes, pre- and post-PR.

The tunable-defense PR touched the pipeline dispatch, the service upload
path and the report assembly; these goldens (generated with the
*unmodified* pre-PR code) pin the existing schemes' outputs to the byte.
Any drift here means a change leaked outside the new ``obfuscate``/
shaping code paths.
"""

import json

from repro.cli import main

GOLDEN_DIR = "tests/data"
DEFENDED_SCHEMES = ("minhash", "scramble", "combined")


def _golden(name: str) -> str:
    with open(f"{GOLDEN_DIR}/{name}", encoding="utf-8") as handle:
        return handle.read()


class TestDefendedSchemeGoldens:
    def test_attack_reports_match_goldens(self, capsys):
        for scheme in DEFENDED_SCHEMES:
            assert main(
                ["attack", "fsl", "--attack", "locality",
                 "--scheme", scheme]
            ) == 0
            out = capsys.readouterr().out
            assert out == _golden(f"golden_attack_{scheme}.txt"), scheme

    def test_serve_sim_reports_match_goldens(self, tmp_path, capsys):
        for scheme in DEFENDED_SCHEMES:
            report = tmp_path / f"{scheme}.json"
            assert main(
                ["serve-sim", "--tenants", "6", "--requests", "12",
                 "--seed", "7", "--scheme", scheme, "--json", str(report)]
            ) == 0
            capsys.readouterr()
            assert report.read_text() == _golden(
                f"golden_serve_sim_{scheme}.json"
            ), scheme

    def test_honest_shaping_flag_is_byte_invisible(self, tmp_path, capsys):
        # --shaping honest must be indistinguishable from not passing
        # the flag at all (the pre-PR protocol).
        report = tmp_path / "honest.json"
        assert main(
            ["serve-sim", "--tenants", "6", "--requests", "12",
             "--seed", "7", "--shaping", "honest", "--json", str(report)]
        ) == 0
        capsys.readouterr()
        assert report.read_text() == _golden("golden_serve_sim.json")


class TestFrontierDeterminism:
    def test_frontier_smoke_is_deterministic_and_monotone(
        self, tmp_path, capsys
    ):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        args = ["frontier", "--smoke", "--output"]
        assert main(args + [str(first)]) == 0
        capsys.readouterr()
        assert main(args + [str(second), "--compare", str(first)]) == 0
        capsys.readouterr()
        report = json.loads(first.read_text())
        for section in ("storage", "bandwidth"):
            assert report["monotonicity"][section], section
            for entry in report["monotonicity"][section]:
                assert entry["non_increasing"], entry
        # Cost columns come from the obs metrics layer, never empty.
        assert all(row["stored_bytes"] for row in report["storage"])
        assert all(row["honest_bytes"] for row in report["bandwidth"])

    def test_frontier_compare_detects_drift(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "frontier", "--datasets", "fsl", "--schemes", "obfuscate:2",
            "--attacks", "basic", "--policies", "honest",
            "--output", str(baseline),
        ]
        assert main(args) == 0
        capsys.readouterr()
        doctored = json.loads(baseline.read_text())
        doctored["storage"][0]["inference_rate"] += 1.0
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(doctored))
        assert main(
            args[:-2] + ["--output", "-", "--compare", str(drifted)]
        ) == 1
        assert "drift" in capsys.readouterr().err
