"""Tests for the canonical workloads and figure-driver plumbing."""

import pytest

from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import (
    encrypted_series,
    fsl_series,
    scaled_segmentation,
    series_by_name,
    series_chunking,
    series_length,
    storage_fsl_series,
    synthetic_series,
    vm_series,
)
from repro.defenses.pipeline import DefenseScheme


class TestCanonicalWorkloads:
    def test_memoisation(self):
        assert fsl_series() is fsl_series()
        assert encrypted_series("fsl") is encrypted_series("fsl")

    def test_series_by_name(self):
        assert series_by_name("fsl") is fsl_series()
        assert series_by_name("vm") is vm_series()
        assert series_by_name("synthetic") is synthetic_series()
        assert series_by_name("storage-fsl") is storage_fsl_series()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            series_by_name("nope")

    def test_unknown_name_message_lists_valid_datasets(self):
        with pytest.raises(KeyError) as excinfo:
            series_by_name("nope")
        message = str(excinfo.value)
        assert "'nope'" in message
        for name in ("fsl", "vm", "synthetic", "storage-fsl"):
            assert name in message, message

    def test_series_length_matches_generated_series(self):
        for name in ("fsl", "vm", "synthetic", "storage-fsl"):
            assert series_length(name) == len(series_by_name(name)), name
        with pytest.raises(KeyError):
            series_length("nope")

    def test_series_chunking_matches_generated_series(self):
        for name in ("fsl", "vm", "synthetic", "storage-fsl"):
            assert series_chunking(name) == series_by_name(name).chunking, name
        with pytest.raises(KeyError):
            series_chunking("nope")

    def test_expected_structure(self):
        assert len(fsl_series()) == 5
        assert len(vm_series()) == 13
        assert len(synthetic_series()) == 11
        assert fsl_series().chunking == "variable"
        assert vm_series().chunking == "fixed"

    def test_scaled_segmentation_tracks_chunk_size(self):
        fsl_spec = scaled_segmentation(fsl_series())   # ~8 KiB chunks
        vm_spec = scaled_segmentation(vm_series())     # 4 KiB chunks
        assert fsl_spec.avg_bytes > vm_spec.avg_bytes

    def test_encrypted_series_scheme(self):
        combined = encrypted_series("synthetic", DefenseScheme.COMBINED)
        assert combined.scheme is DefenseScheme.COMBINED
        assert len(combined) == len(synthetic_series())

    def test_storage_workload_has_lower_minhash_loss(self):
        """The storage-fsl variant exists precisely because its redundancy
        is temporal: MinHash must cost it much less than the
        attack-calibrated fsl workload."""
        from repro.datasets.stats import storage_savings

        losses = {}
        for name in ("fsl", "storage-fsl"):
            mle = encrypted_series(name, DefenseScheme.MLE)
            combined = encrypted_series(name, DefenseScheme.COMBINED)
            saving_mle = storage_savings(
                [b.ciphertext for b in mle.backups]
            )[-1]
            saving_combined = storage_savings(
                [b.ciphertext for b in combined.backups]
            )[-1]
            losses[name] = saving_mle - saving_combined
        assert losses["storage-fsl"] < losses["fsl"] / 2
        assert losses["storage-fsl"] < 0.06


class TestFigureDriversFast:
    """Smoke the cheap figure drivers (the expensive ones run as benches)."""

    def test_fig1(self):
        from repro.analysis.figures import fig1_frequency_skew

        result = fig1_frequency_skew(datasets=("fsl",))
        assert result.columns[0] == "dataset"
        assert len(result.rows) == 1
        assert result.rows[0][0] == "fsl"

    def test_fig11(self):
        from repro.analysis.figures import fig11_storage_saving

        result = fig11_storage_saving(datasets=("storage-fsl",))
        savings = result.column("storage_saving")
        assert all(0.0 <= value <= 1.0 for value in savings)
        assert len(result.rows) == 2 * len(storage_fsl_series())

    def test_fig13_structure(self):
        from repro.analysis.figures import fig13_metadata_small_cache

        result = fig13_metadata_small_cache()
        assert result.columns[-1] == "total_MiB"
        schemes = set(result.column("scheme"))
        assert schemes == {"mle", "combined"}
        for row in result.rows:
            update, index, loading, total = row[2:]
            assert total == pytest.approx(update + index + loading, abs=1e-3)

    def test_results_are_figure_results(self):
        from repro.analysis.figures import fig1_frequency_skew

        assert isinstance(fig1_frequency_skew(datasets=("fsl",)), FigureResult)
