"""Tests for variable-size segmentation (§7.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.units import KiB, MiB
from repro.datasets.chunkspace import ChunkSpace
from repro.defenses.segmentation import (
    Segment,
    SegmentationSpec,
    segment_stream,
)

SPEC = SegmentationSpec(min_bytes=32 * KiB, avg_bytes=64 * KiB, max_bytes=128 * KiB)


def make_stream(count, seed=0, size=4096):
    space = ChunkSpace(namespace=f"seg-{seed}")
    ids = space.allocate_many(count)
    return [space.fingerprint(i) for i in ids], [size] * count


class TestSpec:
    def test_defaults_follow_paper(self):
        spec = SegmentationSpec()
        assert spec.min_bytes == 512 * KiB
        assert spec.avg_bytes == 1 * MiB
        assert spec.max_bytes == 2 * MiB

    def test_invalid_ordering(self):
        with pytest.raises(ConfigurationError):
            SegmentationSpec(min_bytes=2 * MiB, avg_bytes=1 * MiB, max_bytes=4 * MiB)

    def test_divisor_for(self):
        spec = SegmentationSpec()
        assert spec.divisor_for(8192) == 128
        assert spec.divisor_for(4096) == 256

    def test_divisor_requires_positive_chunk_size(self):
        with pytest.raises(ConfigurationError):
            SegmentationSpec().divisor_for(0)

    def test_scaled(self):
        spec = SegmentationSpec.scaled(8192)
        assert spec.min_bytes == 8 * 8192
        assert spec.avg_bytes == 16 * 8192
        assert spec.max_bytes == 32 * 8192


class TestSegmentStream:
    def test_tiles_stream_exactly(self):
        fingerprints, sizes = make_stream(500)
        segments = segment_stream(fingerprints, sizes, SPEC)
        assert segments[0].start == 0
        assert segments[-1].end == len(fingerprints)
        for before, after in zip(segments, segments[1:]):
            assert before.end == after.start

    def test_size_bounds(self):
        fingerprints, sizes = make_stream(2000)
        segments = segment_stream(fingerprints, sizes, SPEC)
        for segment in segments[:-1]:
            seg_bytes = sum(sizes[segment.start : segment.end])
            assert seg_bytes >= SPEC.min_bytes
            # max may be exceeded by at most one chunk
            assert seg_bytes < SPEC.max_bytes + max(sizes)

    def test_deterministic(self):
        fingerprints, sizes = make_stream(800)
        assert segment_stream(fingerprints, sizes, SPEC) == segment_stream(
            fingerprints, sizes, SPEC
        )

    def test_empty_stream(self):
        assert segment_stream([], [], SPEC) == []

    def test_single_chunk(self):
        fingerprints, sizes = make_stream(1)
        assert segment_stream(fingerprints, sizes, SPEC) == [Segment(0, 1)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_stream([b"x"], [1, 2], SPEC)

    def test_content_defined_boundaries_self_synchronise(self):
        """Identical runs embedded in different contexts produce identical
        interior segment boundaries — the property MinHash encryption's
        dedup preservation depends on."""
        shared_fps, shared_sizes = make_stream(400, seed=1)
        prefix_a, sizes_a = make_stream(37, seed=2)
        prefix_b, sizes_b = make_stream(111, seed=3)
        stream_a = prefix_a + shared_fps
        stream_b = prefix_b + shared_fps
        segs_a = segment_stream(stream_a, sizes_a + shared_sizes, SPEC)
        segs_b = segment_stream(stream_b, sizes_b + shared_sizes, SPEC)

        def interior_boundaries(segments, offset, total):
            return {
                segment.end - offset
                for segment in segments
                if segment.end > offset and segment.end < total
            }

        bounds_a = interior_boundaries(segs_a, len(prefix_a), len(stream_a))
        bounds_b = interior_boundaries(segs_b, len(prefix_b), len(stream_b))
        # After an initial alignment phase the boundary sets coincide.
        deep_a = {b for b in bounds_a if b > 100}
        deep_b = {b for b in bounds_b if b > 100}
        assert deep_a == deep_b
        assert deep_a, "expected interior boundaries past the sync point"

    @given(count=st.integers(min_value=0, max_value=600))
    @settings(max_examples=20, deadline=None)
    def test_every_chunk_in_exactly_one_segment(self, count):
        fingerprints, sizes = make_stream(count, seed=count)
        segments = segment_stream(fingerprints, sizes, SPEC)
        covered = [
            index
            for segment in segments
            for index in range(segment.start, segment.end)
        ]
        assert covered == list(range(count))
