"""Tests for repro.index: KV store, Bloom filter, LRU caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, IntegrityError, StorageError
from repro.index.bloom import BloomFilter
from repro.index.cache import FingerprintCache, LRUCache
from repro.index.kvstore import KVStore


class TestKVStoreBasics:
    def test_put_get(self):
        store = KVStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert b"k" in store
        assert len(store) == 1

    def test_get_default(self):
        assert KVStore().get(b"missing") is None
        assert KVStore().get(b"missing", b"dflt") == b"dflt"

    def test_overwrite(self):
        store = KVStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self):
        store = KVStore()
        store.put(b"k", b"v")
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert b"k" not in store

    def test_non_bytes_rejected(self):
        store = KVStore()
        with pytest.raises(StorageError):
            store.put("str", b"v")
        with pytest.raises(StorageError):
            store.put(b"k", 42)

    def test_ordered_iteration(self):
        store = KVStore()
        for key in (b"c", b"a", b"b"):
            store.put(key, key.upper())
        assert list(store.keys()) == [b"a", b"b", b"c"]
        assert list(store.items()) == [(b"a", b"A"), (b"b", b"B"), (b"c", b"C")]

    def test_range_scan(self):
        store = KVStore()
        for index in range(10):
            store.put(bytes([index]), b"v")
        keys = [key for key, _ in store.range(bytes([3]), bytes([7]))]
        assert keys == [bytes([3]), bytes([4]), bytes([5]), bytes([6])]


class TestKVStorePersistence:
    def test_replay_after_close(self, tmp_path):
        path = tmp_path / "store.log"
        with KVStore.open(path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
        reopened = KVStore.open(path)
        assert reopened.get(b"a") is None
        assert reopened.get(b"b") == b"2"
        reopened.close()

    def test_compaction_preserves_state_and_shrinks_log(self, tmp_path):
        path = tmp_path / "store.log"
        store = KVStore.open(path)
        for index in range(50):
            store.put(b"key", str(index).encode())  # 50 versions
        store.flush()
        size_before = path.stat().st_size
        store.compact()
        store.flush()
        assert path.stat().st_size < size_before
        store.close()
        reopened = KVStore.open(path)
        assert reopened.get(b"key") == b"49"
        reopened.close()

    def test_truncated_log_detected(self, tmp_path):
        path = tmp_path / "store.log"
        with KVStore.open(path) as store:
            store.put(b"a", b"1")
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])
        with pytest.raises(IntegrityError):
            KVStore.open(path)

    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from([b"a", b"b", b"c", b"d"]),
                st.binary(max_size=8),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_model_equivalence_with_dict(self, operations, tmp_path_factory):
        """KVStore behaves like a plain dict through arbitrary op sequences,
        including across a close/reopen cycle."""
        path = tmp_path_factory.mktemp("kv") / "store.log"
        model: dict[bytes, bytes] = {}
        store = KVStore.open(path)
        for key, value, is_delete in operations:
            if is_delete:
                model.pop(key, None)
                store.delete(key)
            else:
                model[key] = value
                store.put(key, value)
        store.close()
        reopened = KVStore.open(path)
        assert dict(reopened.items()) == model
        reopened.close()


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, false_positive_rate=0.01)
        keys = [str(i).encode() for i in range(1000)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=5000, false_positive_rate=0.01)
        for i in range(5000):
            bloom.add(f"in-{i}".encode())
        false_hits = sum(
            1 for i in range(20_000) if f"out-{i}".encode() in bloom
        )
        rate = false_hits / 20_000
        assert rate < 0.03, f"observed FPR {rate:.3%}"

    def test_sizing_formulas(self):
        bloom = BloomFilter(capacity=65_000_000, false_positive_rate=0.01)
        # The paper quotes 7 hash functions and ~74 MB for this config.
        assert bloom.num_hashes == 7
        assert 70 * 2**20 < bloom.size_bytes < 80 * 2**20

    def test_expected_fpr_monotone(self):
        bloom = BloomFilter(capacity=100, false_positive_rate=0.01)
        assert bloom.expected_fpr() == 0.0
        for i in range(100):
            bloom.add(str(i).encode())
        assert 0.0 < bloom.expected_fpr() < 0.05

    @pytest.mark.parametrize("capacity,fpr", [(0, 0.01), (10, 0.0), (10, 1.0)])
    def test_invalid_parameters(self, capacity, fpr):
        with pytest.raises(ConfigurationError):
            BloomFilter(capacity, fpr)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == [("a", 1)]
        assert "a" not in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == [("b", 2)]
        assert "a" in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        evicted = cache.put("c", 3)
        assert evicted == [("b", 2)]
        assert cache.get("a") == 10

    def test_len_never_exceeds_capacity(self):
        cache = LRUCache(capacity=3)
        for index in range(10):
            cache.put(index, index)
            assert len(cache) <= 3

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_lru_invariant_most_recent_survive(self, accesses):
        """After any access sequence, the cache holds exactly the most
        recently used distinct keys."""
        capacity = 4
        cache = LRUCache(capacity=capacity)
        for key in accesses:
            cache.put(key, key)
        recent: list[int] = []
        for key in reversed(accesses):
            if key not in recent:
                recent.append(key)
            if len(recent) == capacity:
                break
        assert set(cache) == set(recent)


class TestFingerprintCache:
    def test_budget_to_capacity(self):
        cache = FingerprintCache(budget_bytes=1024, entry_bytes=32)
        assert cache.capacity_entries == 32

    def test_hit_miss_accounting(self):
        cache = FingerprintCache(budget_bytes=1024)
        assert cache.lookup(b"fp") is None
        cache.insert(b"fp", 7)
        assert cache.lookup(b"fp") == 7
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_count(self):
        cache = FingerprintCache(budget_bytes=64, entry_bytes=32)  # 2 entries
        cache.insert(b"a", 1)
        cache.insert(b"b", 2)
        assert cache.insert(b"c", 3) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FingerprintCache(budget_bytes=16, entry_bytes=32)
