"""Observability layer tests: registry semantics, merge determinism,
and the metrics-off byte-identity guarantee.

Three families:

* **registry/ring semantics** — counters add, gauges take max,
  histograms merge bucket-wise with pinned boundaries; the span ring is
  bounded and remaps worker sequences; the facade is a no-op while
  disabled.
* **merge determinism** — the sharded COUNT and the scenario runner
  produce byte-identical *stable* snapshots at ``jobs=1`` and
  ``jobs=4`` (volatile timings/RSS differ; schedule-invariant content
  must not).
* **byte-identity** — with observability off (and on), the CLI's
  attack/figure/serve-sim reports match the goldens captured before the
  instrumentation existed: metrics must never leak into report bytes.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    Histogram,
    MetricsRegistry,
    metric_key,
    snapshot_bytes,
)
from repro.obs.render import diff_snapshots, load_snapshot, render_snapshot
from repro.obs.tracing import NULL_SPAN, SpanRing, export_jsonl
from repro.service import protocol as wire

GOLDEN_DIR = "tests/data"


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    """Every test starts and ends with observability off and empty.

    ``obs`` is process-global state; without this, a test that enables
    metrics would leak recordings (and the exported ``REPRO_OBS`` env
    var) into every later test in the process.
    """
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Registry semantics


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("serve.frames") == "serve.frames"

    def test_labels_sorted_by_key(self):
        assert (
            metric_key("serve.errors", {"code": "busy", "cls": "admission"})
            == metric_key("serve.errors", {"cls": "admission", "code": "busy"})
            == "serve.errors|cls=admission,code=busy"
        )


class TestHistogram:
    def test_observe_buckets_and_overflow(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]  # overflow slot never loses
        assert histogram.count == 3
        assert histogram.low == 0.5
        assert histogram.high == 99.0

    def test_quantile_is_bucket_resolution(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 4.0

    def test_merge_requires_same_buckets(self):
        histogram = Histogram((1.0, 2.0))
        other = Histogram((1.0, 3.0))
        other.observe(0.5)
        with pytest.raises(ConfigurationError):
            histogram.merge(other.state())

    def test_merge_adds_counts_and_widens_extremes(self):
        left = Histogram((1.0, 2.0))
        left.observe(0.5)
        right = Histogram((1.0, 2.0))
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right.state())
        assert left.counts == [1, 1, 1]
        assert left.count == 3
        assert (left.low, left.high) == (0.5, 9.0)


class TestMetricsRegistry:
    def test_counter_adds_and_gauge_last_wins(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        registry.counter("requests", 4)
        registry.gauge("depth", 7)
        registry.gauge("depth", 3)
        registry.gauge_max("peak", 5)
        registry.gauge_max("peak", 2)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"requests": 5}
        assert snapshot["gauges"] == {"depth": 3, "peak": 5}

    def test_stable_only_drops_volatile(self):
        registry = MetricsRegistry()
        registry.counter("chunks", 10)
        registry.gauge_max("rss", 123, stable=False)
        registry.observe("latency_s", 0.01)  # histograms default volatile
        stable = registry.snapshot(stable_only=True)
        assert stable["counters"] == {"chunks": 10}
        assert stable["gauges"] == {}
        assert stable["histograms"] == {}
        assert stable["volatile"] == []
        full = registry.snapshot()
        assert set(full["volatile"]) == {"rss", "latency_s"}

    def test_merge_semantics(self):
        parent = MetricsRegistry()
        parent.counter("chunks", 10)
        parent.gauge_max("peak", 5)
        parent.observe("t", 0.5, buckets=(1.0, 2.0))
        worker = MetricsRegistry()
        worker.counter("chunks", 7)
        worker.gauge_max("peak", 9)
        worker.observe("t", 1.5, buckets=(1.0, 2.0))
        parent.merge_snapshot(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"] == {"chunks": 17}
        assert snapshot["gauges"] == {"peak": 9}
        assert snapshot["histograms"]["t"]["count"] == 2

    def test_merge_order_independent(self):
        shards = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.counter("chunks", 100 + index)
            registry.gauge_max("peak", 10 * index)
            registry.observe("t", 0.1 * (index + 1))
            shards.append(registry.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snapshot in shards:
            forward.merge_snapshot(snapshot)
        for snapshot in reversed(shards):
            backward.merge_snapshot(snapshot)
        assert snapshot_bytes(forward.snapshot()) == snapshot_bytes(
            backward.snapshot()
        )

    def test_snapshot_bytes_insertion_order_independent(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a")
        first.counter("b")
        second.counter("b")
        second.counter("a")
        assert snapshot_bytes(first.snapshot()) == snapshot_bytes(
            second.snapshot()
        )

    def test_snapshot_schema_and_clear(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert registry.snapshot()["schema"] == SNAPSHOT_SCHEMA
        assert len(registry) == 1
        registry.clear()
        assert len(registry) == 0


# ---------------------------------------------------------------------------
# Facade switch behavior


class TestFacadeSwitch:
    def test_disabled_calls_are_noops(self):
        obs.counter("x")
        obs.gauge("y", 1)
        obs.observe("z", 0.1)
        assert len(obs.registry()) == 0
        assert obs.span("s") is NULL_SPAN
        assert obs.worker_registry() is None

    def test_enable_records_and_exports_env(self):
        import os

        obs.enable(metrics=True, tracing=True)
        obs.counter("x")
        with obs.span("s", shard=1):
            pass
        assert obs.snapshot()["counters"] == {"x": 1}
        assert len(obs.span_ring()) == 1
        assert "metrics" in os.environ[obs.ENV_VAR]
        assert "trace" in os.environ[obs.ENV_VAR]
        obs.disable()
        assert obs.ENV_VAR not in os.environ

    def test_worker_registry_is_fresh(self):
        obs.enable()
        obs.counter("parent.only")
        worker = obs.worker_registry()
        assert worker is not obs.registry()
        assert len(worker) == 0
        worker.counter("child.only")
        obs.merge_snapshot(worker.snapshot())
        assert obs.snapshot()["counters"] == {
            "child.only": 1,
            "parent.only": 1,
        }

    def test_merge_none_is_noop(self):
        obs.enable()
        obs.merge_snapshot(None)
        obs.merge_spans(None)
        assert len(obs.registry()) == 0

    def test_env_parse_tokens(self):
        from repro.obs import _parse_env

        assert _parse_env("metrics") == (True, False, False)
        assert _parse_env("metrics,trace") == (True, True, False)
        assert _parse_env("all") == (True, True, True)
        assert _parse_env("1") == (True, True, True)
        assert _parse_env("nonsense") == (False, False, False)


class TestSpanRing:
    def test_records_in_order_with_tags(self):
        ring = SpanRing()
        with ring.span("a", shard=0):
            pass
        with ring.span("b"):
            pass
        records = ring.records()
        assert [record["name"] for record in records] == ["a", "b"]
        assert records[0]["shard"] == 0
        assert [record["seq"] for record in records] == [0, 1]
        assert all(record["dur_s"] >= 0 for record in records)

    def test_bounded_with_drop_accounting(self):
        ring = SpanRing(capacity=2)
        for _ in range(5):
            with ring.span("s"):
                pass
        assert len(ring) == 2
        assert ring.dropped == 3

    def test_extend_remaps_worker_sequences(self):
        ring = SpanRing()
        with ring.span("parent"):
            pass
        ring.extend([{"seq": 0, "name": "child", "dur_s": 0.1}])
        assert [record["seq"] for record in ring.records()] == [0, 1]

    def test_export_jsonl(self, tmp_path):
        ring = SpanRing()
        with ring.span("a", shard=2):
            pass
        path = tmp_path / "trace.jsonl"
        assert export_jsonl(ring, path) == 1
        record = json.loads(path.read_text().strip())
        assert record["name"] == "a"
        assert record["shard"] == 2


# ---------------------------------------------------------------------------
# Error classes (satellite: FrontendStats breakdown by failure class)


class TestErrorClasses:
    def test_mapping(self):
        assert wire.error_class(wire.E_RATE_LIMITED) == wire.CLASS_ADMISSION
        assert wire.error_class(wire.E_QUOTA) == wire.CLASS_ADMISSION
        assert wire.error_class(wire.E_BUSY) == wire.CLASS_ADMISSION
        for code in wire.FATAL_CODES - wire.GARBAGE_CODES:
            assert wire.error_class(code) == wire.CLASS_TRANSPORT
        # Garbage (an undefined frame kind) is fatal but classed on its
        # own, so stream corruption is distinguishable from
        # protocol-aware transport abuse.
        assert wire.error_class(wire.E_UNKNOWN_KIND) == wire.CLASS_GARBAGE
        assert wire.E_UNKNOWN_KIND in wire.FATAL_CODES
        assert wire.error_class(wire.E_NOT_FOUND) == wire.CLASS_SESSION
        assert wire.error_class("never-seen-before") == wire.CLASS_SESSION

    def test_frontend_stats_breakdown(self):
        from repro.service.frontend import FrontendStats

        stats = FrontendStats()
        stats.count_error(wire.E_RATE_LIMITED)
        stats.count_error(wire.E_RATE_LIMITED)
        stats.count_error(wire.E_NOT_FOUND)
        for code in sorted(wire.FATAL_CODES):
            stats.count_error(code)
        assert stats.errors_by_class == {
            wire.CLASS_ADMISSION: 2,
            wire.CLASS_GARBAGE: len(wire.GARBAGE_CODES),
            wire.CLASS_SESSION: 1,
            wire.CLASS_TRANSPORT: len(
                wire.FATAL_CODES - wire.GARBAGE_CODES
            ),
        }
        # All four classes are pre-seeded so the STATS frame shape is
        # stable even before any error occurs.
        assert set(FrontendStats().errors_by_class) == set(wire.ERROR_CLASSES)


# ---------------------------------------------------------------------------
# Bench envelope provenance (satellite: git commit + dirty flag)


class TestBenchEnvelope:
    def test_envelope_schema_and_git_fields(self):
        from repro.analysis.benchmeta import ENVELOPE_SCHEMA, metadata_envelope

        envelope = metadata_envelope()
        assert envelope["schema"] == ENVELOPE_SCHEMA == 2
        commit, dirty = envelope["git_commit"], envelope["git_dirty"]
        if commit is None:
            # Outside a git checkout both provenance fields are None.
            assert dirty is None
        else:
            assert len(commit) == 40
            int(commit, 16)
            assert isinstance(dirty, bool)


# ---------------------------------------------------------------------------
# Snapshot render/diff (the `freqdedup obs` surface)


class TestRender:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("count.chunks", 50)
        registry.gauge_max("rss", 1024, stable=False)
        registry.observe("phase_s", 0.002, phase="read")
        return registry.snapshot()

    def test_render_lists_every_section(self):
        text = render_snapshot(self._snapshot())
        assert "count.chunks" in text
        assert "rss" in text and "~" in text  # volatile marker
        assert "phase_s|phase=read" in text

    def test_diff_reports_deltas_and_silence(self):
        left = self._snapshot()
        registry = MetricsRegistry()
        registry.merge_snapshot(left)
        registry.counter("count.chunks", 25)
        delta = diff_snapshots(left, registry.snapshot())
        assert "count.chunks" in delta
        assert diff_snapshots(left, left) == "(no differences)"

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a snapshot"}')
        with pytest.raises(ConfigurationError):
            load_snapshot(path)

    def test_cli_render_and_diff(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_bytes(snapshot_bytes(self._snapshot()))
        assert main(["obs", "render", str(path)]) == 0
        assert "count.chunks" in capsys.readouterr().out
        assert main(["obs", "diff", str(path), str(path)]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_cli_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "render", str(tmp_path / "absent.json")])


# ---------------------------------------------------------------------------
# Merge determinism: same stable snapshot bytes at any --jobs


def _stream_trace(tmp_path):
    from repro.datasets.columnar import StreamConfig, ensure_stream_columnar

    return ensure_stream_columnar(
        tmp_path / "trace", StreamConfig(chunks=6_000, backups=2), seed=5
    )


class TestShardedCountDeterminism:
    def _stable_bytes(self, trace, jobs):
        from repro.attacks.sharded import sharded_count

        obs.reset()
        for view in trace.views():
            sharded_count(view, jobs=jobs)
        return snapshot_bytes(obs.snapshot(stable_only=True))

    def test_stable_snapshot_identical_across_jobs(self, tmp_path):
        obs.enable()
        trace = _stream_trace(tmp_path)
        try:
            serial = self._stable_bytes(trace, jobs=1)
            fanned = self._stable_bytes(trace, jobs=4)
        finally:
            trace.close()
        assert serial == fanned
        stable = json.loads(serial)
        assert stable["counters"]["count.backups"] == 2
        assert stable["counters"]["count.chunks"] == 6_000

    def test_full_snapshot_has_per_shard_phase_timings(self, tmp_path):
        from repro.attacks.sharded import sharded_count

        obs.enable()
        trace = _stream_trace(tmp_path)
        try:
            sharded_count(trace.view(0), jobs=4)
        finally:
            trace.close()
        snapshot = obs.snapshot()
        histograms = snapshot["histograms"]
        for phase in ("read", "bincount", "merge"):
            key = f"count.shard.phase_s|phase={phase}"
            assert key in histograms, key
            assert key in snapshot["volatile"]
        assert histograms["count.shard.phase_s|phase=read"]["count"] == 4

    def test_worker_spans_merge_into_parent_ring(self, tmp_path):
        from repro.attacks.sharded import sharded_count

        obs.enable(metrics=True, tracing=True)
        trace = _stream_trace(tmp_path)
        try:
            sharded_count(trace.view(0), jobs=2)
        finally:
            trace.close()
        names = [record["name"] for record in obs.span_ring().records()]
        assert names.count("count.shard") == 2
        assert names.count("count.merge") == 1


class TestRunnerDeterminism:
    @staticmethod
    def _cells():
        from repro.scenarios.spec import Cell

        return [
            Cell(
                kind="attack",
                params=(
                    ("dataset", "synthetic"),
                    ("attack", "basic"),
                    ("scheme", "mle"),
                    ("auxiliary", -2),
                    ("target", -1),
                    ("seed", seed),
                    ("u", 1),
                    ("v", 15),
                    ("w", 200000),
                    ("leakage_rate", 0.0),
                ),
                tags=(("seed", seed),),
            )
            for seed in range(4)
        ]

    def _stable_bytes(self, jobs):
        from repro.scenarios.runner import Runner

        obs.reset()
        results = Runner(jobs=jobs).run_cells(self._cells())
        rows = [result.rows for result in results]
        return rows, snapshot_bytes(obs.snapshot(stable_only=True))

    def test_stable_snapshot_identical_across_jobs(self):
        obs.enable()
        serial_rows, serial = self._stable_bytes(jobs=1)
        fanned_rows, fanned = self._stable_bytes(jobs=4)
        assert serial_rows == fanned_rows
        assert serial == fanned
        stable = json.loads(serial)
        assert stable["counters"]["runner.cells_executed|kind=attack"] == 4
        assert stable["counters"]["runner.cells|source=executed"] == 4


# ---------------------------------------------------------------------------
# Byte-identity vs pre-observability goldens (metrics off AND on)


def _golden(name: str) -> str:
    with open(f"{GOLDEN_DIR}/{name}", encoding="utf-8") as handle:
        return handle.read()


class TestGoldenIdentity:
    def test_attack_fsl_matches_golden(self, capsys):
        assert main(["attack", "fsl", "--attack", "locality"]) == 0
        assert capsys.readouterr().out == _golden("golden_attack_fsl.txt")

    def test_figure1_matches_golden(self, capsys):
        assert main(["figure", "1"]) == 0
        assert capsys.readouterr().out == _golden("golden_figure1.txt")

    def test_figure1_matches_golden_with_metrics_on(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main(["figure", "1", "--metrics", str(metrics)]) == 0
        assert capsys.readouterr().out == _golden("golden_figure1.txt")
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["counters"]["runner.cells|source=executed"] >= 1

    def test_serve_sim_matches_golden(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        args = [
            "serve-sim", "--tenants", "6", "--requests", "12",
            "--seed", "7", "--json", str(report),
        ]
        assert main(args) == 0
        capsys.readouterr()
        off_bytes = report.read_text()
        assert off_bytes == _golden("golden_serve_sim.json")
        metrics = tmp_path / "m.json"
        assert main(args + ["--metrics", str(metrics)]) == 0
        capsys.readouterr()
        assert report.read_text() == off_bytes
        snapshot = json.loads(metrics.read_text())
        assert any(
            key.startswith("ddfs.cache.") for key in snapshot["gauges"]
        )

    def test_columnar_attack_matches_golden(self, tmp_path, capsys):
        trace_dir = tmp_path / "stream"
        assert main(
            ["generate", "stream", str(trace_dir), "--columnar",
             "--chunks", "50000", "--seed", "7"]
        ) == 0
        capsys.readouterr()
        assert main(["attack", "--columnar", str(trace_dir)]) == 0
        off = capsys.readouterr().out
        assert off == _golden("golden_attack_columnar.txt")
        metrics = tmp_path / "m.json"
        trace_out = tmp_path / "t.jsonl"
        assert main(
            ["attack", "--columnar", str(trace_dir), "--jobs", "2",
             "--metrics", str(metrics), "--trace-out", str(trace_out)]
        ) == 0
        assert capsys.readouterr().out == off
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["count.chunks"] == 50000
        spans = [
            json.loads(line)
            for line in trace_out.read_text().splitlines()
        ]
        assert any(span["name"] == "count.shard" for span in spans)
        assert any(span["name"] == "count.merge" for span in spans)
