"""Tests for the attack evaluator: inference rate, leakage sampling."""

import pytest

from repro.attacks.basic import BasicAttack
from repro.attacks.evaluation import (
    AttackEvaluator,
    InferenceReport,
    sample_leakage,
)
from repro.attacks.locality import LocalityAttack
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup, BackupSeries
from repro.defenses.pipeline import DefensePipeline, DefenseScheme


def encrypted_pair(plain_tokens, label="b"):
    series = BackupSeries(
        name="t",
        backups=[
            Backup(
                label=f"{label}{i}",
                fingerprints=[t.encode() for t in tokens],
                sizes=[4096] * len(tokens),
            )
            for i, tokens in enumerate(plain_tokens)
        ],
    )
    return DefensePipeline(DefenseScheme.MLE).encrypt_series(series)


class TestInferenceReport:
    def test_rate_and_precision(self):
        report = InferenceReport(
            attack="locality",
            scheme="mle",
            auxiliary_label="a",
            target_label="t",
            unique_ciphertext_chunks=100,
            inferred_pairs=50,
            correct_pairs=25,
            leakage_rate=0.0,
            leaked_pairs=0,
            iterations=10,
        )
        assert report.inference_rate == 0.25
        assert report.precision == 0.5

    def test_zero_divisions(self):
        report = InferenceReport(
            attack="basic",
            scheme="mle",
            auxiliary_label="a",
            target_label="t",
            unique_ciphertext_chunks=0,
            inferred_pairs=0,
            correct_pairs=0,
            leakage_rate=0.0,
            leaked_pairs=0,
            iterations=0,
        )
        assert report.inference_rate == 0.0
        assert report.precision == 0.0

    def test_str_contains_key_fields(self):
        report = InferenceReport(
            attack="locality",
            scheme="mle",
            auxiliary_label="aux",
            target_label="tgt",
            unique_ciphertext_chunks=10,
            inferred_pairs=5,
            correct_pairs=5,
            leakage_rate=0.01,
            leaked_pairs=1,
            iterations=3,
        )
        text = str(report)
        assert "locality" in text and "aux" in text and "tgt" in text


class TestSampleLeakage:
    def test_zero_rate_empty(self):
        encrypted = encrypted_pair([["a", "b"], ["a", "b"]])
        assert sample_leakage(encrypted[1], 0.0) == {}

    def test_sample_size(self):
        tokens = [f"t{i}" for i in range(100)]
        encrypted = encrypted_pair([tokens, tokens])
        leaked = sample_leakage(encrypted[1], 0.1, seed=1)
        assert len(leaked) == 10

    def test_sampled_pairs_are_true_pairs(self):
        tokens = [f"t{i}" for i in range(50)]
        encrypted = encrypted_pair([tokens, tokens])
        leaked = sample_leakage(encrypted[1], 0.2, seed=2)
        for cipher_fp, plain_fp in leaked.items():
            assert encrypted[1].truth[cipher_fp] == plain_fp

    def test_deterministic_per_seed(self):
        tokens = [f"t{i}" for i in range(50)]
        encrypted = encrypted_pair([tokens, tokens])
        assert sample_leakage(encrypted[1], 0.2, seed=3) == sample_leakage(
            encrypted[1], 0.2, seed=3
        )
        assert sample_leakage(encrypted[1], 0.2, seed=3) != sample_leakage(
            encrypted[1], 0.2, seed=4
        )

    def test_invalid_rate(self):
        encrypted = encrypted_pair([["a"], ["a"]])
        with pytest.raises(ConfigurationError):
            sample_leakage(encrypted[1], 1.5)

    def test_negative_rate_rejected(self):
        encrypted = encrypted_pair([["a"], ["a"]])
        with pytest.raises(ConfigurationError):
            sample_leakage(encrypted[1], -0.1)

    def test_full_rate_leaks_every_unique_pair(self):
        tokens = [f"t{i}" for i in range(40)] + ["t0", "t1"]  # with repeats
        encrypted = encrypted_pair([tokens, tokens])
        leaked = sample_leakage(encrypted[1], 1.0, seed=9)
        assert len(leaked) == encrypted[1].unique_ciphertext_chunks
        assert leaked == encrypted[1].truth

    def test_rate_rounding_to_zero_pairs_is_empty(self):
        # 20 unique chunks at 0.1% rounds to zero sampled pairs.
        tokens = [f"t{i}" for i in range(20)]
        encrypted = encrypted_pair([tokens, tokens])
        assert sample_leakage(encrypted[1], 0.001, seed=3) == {}


class TestAttackEvaluator:
    def test_perfect_inference_on_identical_unambiguous_streams(self):
        # Distinct frequencies everywhere -> basic attack is exact.
        tokens = ["a"] * 3 + ["b"] * 2 + ["c"]
        encrypted = encrypted_pair([tokens, tokens])
        evaluator = AttackEvaluator(encrypted)
        report = evaluator.run(BasicAttack(), auxiliary=0, target=1)
        assert report.inference_rate == 1.0

    def test_disjoint_streams_rate_zero(self):
        encrypted = encrypted_pair([["a", "b", "c"], ["x", "y", "z"]])
        evaluator = AttackEvaluator(encrypted)
        report = evaluator.run(
            LocalityAttack(u=1, v=2, w=10), auxiliary=0, target=1
        )
        assert report.correct_pairs == 0

    def test_rate_counts_unique_ciphertext_chunks(self):
        # 6 logical chunks but 3 unique.
        tokens = ["a", "b", "c", "a", "b", "c"]
        encrypted = encrypted_pair([tokens, tokens])
        evaluator = AttackEvaluator(encrypted)
        report = evaluator.run(BasicAttack(), auxiliary=0, target=1)
        assert report.unique_ciphertext_chunks == 3

    def test_leakage_included_in_rate(self):
        # Disjoint content: nothing inferable, so the rate equals the
        # leakage contribution exactly.
        target = [f"t{i}" for i in range(20)]
        encrypted = encrypted_pair([["x", "y"], target])
        evaluator = AttackEvaluator(encrypted)
        report = evaluator.run(
            LocalityAttack(u=1, v=2, w=10),
            auxiliary=0,
            target=1,
            leakage_rate=0.25,
        )
        assert report.leaked_pairs == 5
        assert report.correct_pairs == 5
        assert report.inference_rate == 0.25

    def test_negative_indices(self, tiny_encrypted_mle):
        evaluator = AttackEvaluator(tiny_encrypted_mle)
        by_negative = evaluator.run(BasicAttack(), auxiliary=-2, target=-1)
        by_positive = evaluator.run(
            BasicAttack(),
            auxiliary=len(tiny_encrypted_mle) - 2,
            target=len(tiny_encrypted_mle) - 1,
        )
        assert by_negative.inference_rate == by_positive.inference_rate


class TestCrossTenantEvaluation:
    """Auxiliary and target populations from *different tenants* of the
    multi-tenant service (cross-user leakage edge cases)."""

    @staticmethod
    def trace(**overrides):
        from repro.service import ServiceConfig, simulate

        defaults = dict(
            tenants=3,
            rounds=1,
            files_per_tenant=5,
            mean_file_chunks=8,
            restore_probability=0.0,
        )
        defaults.update(overrides)
        return simulate(ServiceConfig(**defaults))

    def disjoint_trace(self):
        # No shared templates, no shared popular pool: tenants are fully
        # private, so any cross-tenant pair has empty overlap.
        return self.trace(duplication_factor=0.0, popular_rate=0.0)

    def identical_trace(self):
        # One template, always drawn: every tenant's filesystem is the
        # same file repeated, so cross-tenant overlap is total.
        return self.trace(
            duplication_factor=1.0, num_templates=1, popular_rate=0.0
        )

    def test_empty_overlap_infers_nothing(self):
        trace = self.disjoint_trace()
        meter = trace.meter
        assert meter.overlap(0, 1) == 0.0
        report = meter.evaluate(LocalityAttack(u=1, v=15, w=1000), 0, 1)
        assert report.correct_pairs == 0
        assert report.inference_rate == 0.0

    def test_full_overlap_infers_nearly_everything(self):
        from repro.attacks.frequency import INSERTION

        trace = self.identical_trace()
        meter = trace.meter
        assert meter.overlap(0, 1) == 1.0
        # Identical streams align rank-for-rank under insertion-order
        # ties, so the locality attack recovers the whole stream.
        attack = LocalityAttack(
            u=1, v=15, w=1000, seed_tie_break=INSERTION
        )
        report = meter.evaluate(attack, 0, 1)
        assert report.inference_rate > 0.9

    def test_cross_tenant_leakage_sample_is_target_truth(self):
        trace = self.disjoint_trace()
        encrypted = trace.meter.encrypted_trace()
        target = encrypted[trace.meter.upload_position(1)]
        leaked = sample_leakage(target, 0.5, seed=3)
        assert leaked  # half the unique chunks
        for cipher_fp, plain_fp in leaked.items():
            assert target.truth[cipher_fp] == plain_fp
        assert sample_leakage(target, 0.5, seed=3) == leaked
        assert sample_leakage(target, 0.5, seed=4) != leaked

    def test_full_leakage_dominates_even_with_empty_overlap(self):
        # Known-plaintext mode: with the whole target leaked the rate is
        # 1.0 even though the cross-tenant auxiliary shares nothing.
        trace = self.disjoint_trace()
        report = trace.meter.evaluate(
            LocalityAttack(u=1, v=15, w=1000),
            auxiliary_tenant=0,
            target_tenant=1,
            leakage_rate=1.0,
        )
        assert report.leaked_pairs == report.unique_ciphertext_chunks
        assert report.inference_rate == 1.0

    def test_population_auxiliary_contains_all_other_tenants(self):
        trace = self.identical_trace()
        meter = trace.meter
        population = meter.population_auxiliary(excluding_tenant=0)
        own = set(
            meter.encrypted_trace()
            .plaintext[meter.upload_position(1)]
            .fingerprints
        )
        assert own <= set(population.fingerprints)
