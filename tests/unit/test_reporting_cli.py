"""Tests for figure reporting and the CLI front-end."""

import json

import pytest

from repro.analysis.reporting import FigureResult, render_table, save_result
from repro.cli import main


class TestFigureResult:
    def test_add_row_validates_arity(self):
        result = FigureResult(figure="F", title="t", columns=["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_access(self):
        result = FigureResult(figure="F", title="t", columns=["a", "b"])
        result.add_row(1, "x")
        result.add_row(2, "y")
        assert result.column("a") == [1, 2]
        assert result.column("b") == ["x", "y"]


class TestRenderTable:
    def test_contains_header_and_rows(self):
        result = FigureResult(figure="Figure 9", title="demo", columns=["col"])
        result.add_row(0.12345)
        text = render_table(result)
        assert "Figure 9" in text
        assert "col" in text
        assert "0.1235" in text  # floats rendered to 4 decimal places

    def test_notes_rendered(self):
        result = FigureResult(figure="F", title="t", columns=["c"], notes=["hello"])
        assert "note: hello" in render_table(result)


class TestSaveResult:
    def test_writes_text_and_json(self, tmp_path):
        result = FigureResult(figure="Figure 5", title="t", columns=["x"])
        result.add_row(1)
        path = save_result(result, tmp_path)
        assert path.exists()
        assert "Figure 5" in path.read_text()
        payload = json.loads((tmp_path / "figure_5.json").read_text())
        assert payload["rows"] == [[1]]


class TestCLI:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_stats_fsl(self, capsys):
        assert main(["stats", "fsl"]) == 0
        out = capsys.readouterr().out
        assert "dedup ratio" in out
        assert "fsl" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "out.trace"
        assert main(["generate", "synthetic", str(path)]) == 0
        assert path.exists()
        from repro.datasets.trace import load_series

        series = load_series(path)
        assert series.name == "synthetic"

    def test_attack_command(self, capsys):
        code = main(
            ["attack", "synthetic", "--attack", "basic", "--auxiliary", "-2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "basic" in out and "rate=" in out

    def test_attack_with_defense_scheme(self, capsys):
        code = main(
            [
                "attack",
                "synthetic",
                "--attack",
                "locality",
                "--scheme",
                "combined",
                "-v",
                "5",
            ]
        )
        assert code == 0
        assert "combined" in capsys.readouterr().out

    def test_figure_command(self, tmp_path, capsys):
        assert main(["figure", "1", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert (tmp_path / "figure_1.txt").exists()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["stats", "nope"])
