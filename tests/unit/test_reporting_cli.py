"""Tests for figure reporting and the CLI front-end."""

import json

import pytest

from repro.analysis.reporting import FigureResult, render_table, save_result
from repro.cli import main


class TestFigureResult:
    def test_add_row_validates_arity(self):
        result = FigureResult(figure="F", title="t", columns=["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_access(self):
        result = FigureResult(figure="F", title="t", columns=["a", "b"])
        result.add_row(1, "x")
        result.add_row(2, "y")
        assert result.column("a") == [1, 2]
        assert result.column("b") == ["x", "y"]


class TestRenderTable:
    def test_contains_header_and_rows(self):
        result = FigureResult(figure="Figure 9", title="demo", columns=["col"])
        result.add_row(0.12345)
        text = render_table(result)
        assert "Figure 9" in text
        assert "col" in text
        assert "0.1235" in text  # floats rendered to 4 decimal places

    def test_notes_rendered(self):
        result = FigureResult(figure="F", title="t", columns=["c"], notes=["hello"])
        assert "note: hello" in render_table(result)


class TestSaveResult:
    def test_writes_text_and_json(self, tmp_path):
        result = FigureResult(figure="Figure 5", title="t", columns=["x"])
        result.add_row(1)
        path = save_result(result, tmp_path)
        assert path.exists()
        assert "Figure 5" in path.read_text()
        payload = json.loads((tmp_path / "figure_5.json").read_text())
        assert payload["rows"] == [[1]]


class TestCLI:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_stats_fsl(self, capsys):
        assert main(["stats", "fsl"]) == 0
        out = capsys.readouterr().out
        assert "dedup ratio" in out
        assert "fsl" in out

    def test_stats_json_is_scriptable(self, capsys):
        assert main(["stats", "fsl", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"] == "fsl"
        assert payload["backups"] == len(payload["labels"])
        assert payload["dedup_ratio"] > 1.0
        assert 0.0 <= payload["frac_below_100"] <= 1.0
        assert 0.0 <= payload["last_pair_overlap"] <= 1.0

    def test_stats_json_deterministic(self, capsys):
        assert main(["stats", "synthetic", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["stats", "synthetic", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_report_json(self, tmp_path, capsys):
        assert main(["figure", "1", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--results", str(tmp_path), "--json"]) == 0
        lines = json.loads(capsys.readouterr().out)
        assert lines and all(
            set(line) == {"figure", "metric", "paper", "measured"}
            for line in lines
        )

    def test_generate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "out.trace"
        assert main(["generate", "synthetic", str(path)]) == 0
        assert path.exists()
        from repro.datasets.trace import load_series

        series = load_series(path)
        assert series.name == "synthetic"

    def test_attack_command(self, capsys):
        code = main(
            ["attack", "synthetic", "--attack", "basic", "--auxiliary", "-2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "basic" in out and "rate=" in out

    def test_attack_with_defense_scheme(self, capsys):
        code = main(
            [
                "attack",
                "synthetic",
                "--attack",
                "locality",
                "--scheme",
                "combined",
                "-v",
                "5",
            ]
        )
        assert code == 0
        assert "combined" in capsys.readouterr().out

    def test_figure_command(self, tmp_path, capsys):
        assert main(["figure", "1", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert (tmp_path / "figure_1.txt").exists()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["stats", "nope"])

    def test_attack_seed_changes_leakage_sample(self, capsys):
        outputs = {}
        for seed in ("1", "2"):
            assert main(
                [
                    "attack",
                    "fsl",
                    "--attack",
                    "basic",
                    "--leakage-rate",
                    "0.01",
                    "--seed",
                    seed,
                ]
            ) == 0
            outputs[seed] = capsys.readouterr().out
        assert all("leak=1.00%" in out for out in outputs.values())
        # Seeds 1 and 2 are known to leak samples whose overlap with the
        # basic attack's own inferences differs (246 vs 245 correct pairs
        # on the canonical fsl workload) — if --seed stops being threaded
        # through to sample_leakage, both runs collapse to seed 0's output
        # and this assertion catches it.
        assert outputs["1"] != outputs["2"]

    def test_figure_jobs_flag_matches_serial(self, capsys):
        assert main(["figure", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["figure", "1", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_figure_cache_rerun_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cells")
        assert main(["figure", "1", "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert main(["figure", "1", "--cache", cache]) == 0
        assert capsys.readouterr().out == first

    def test_sweep_command(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--datasets",
                "fsl",
                "--attacks",
                "basic",
                "--pairs=-2:-1",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inference_rate" in out
        payload = json.loads(json_path.read_text())
        assert payload["columns"][0] == "dataset"
        assert len(payload["rows"]) == 1
        assert payload["rows"][0][0] == "fsl"

    def test_sweep_rejects_malformed_pairs(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--datasets", "fsl", "--pairs", "nope"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--datasets", "nope"],
            ["sweep", "--datasets", "fsl", "--schemes", "rot13"],
            ["sweep", "--datasets", "fsl", "--attacks", "quantum"],
            ["sweep", "--datasets", "fsl", "--jobs", "0"],
            ["sweep", "--datasets", "fsl", "--pairs", "0:99"],
            ["sweep", "--datasets", "fsl", "--leakage-rates", "1.5"],
            ["figure", "1", "--jobs", "0"],
        ],
    )
    def test_bad_axis_values_exit_cleanly(self, argv):
        with pytest.raises(SystemExit):
            main(argv)
