"""Conformance and equivalence tests for the pluggable KV backends.

Every backend must behave like a byte-keyed Python dict: overwrites keep
first-insertion order, ``keys()``/``items()`` iterate in ascending byte
order, and batch writes equal sequential puts. The equivalence tests pin
the tentpole property: the streaming COUNT produces byte-identical output
— including tie-break-sensitive iteration order — on every backend.
"""

import random

import pytest

from repro.attacks.frequency import count_with_neighbors
from repro.attacks.streaming import CountStores, StreamingCount, streaming_count
from repro.common.errors import ConfigurationError, StorageError
from repro.datasets.model import Backup
from repro.index.backends import (
    KVBackend,
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    open_backend,
)
from repro.index.kvstore import KVStore

ALL_SPECS = (
    "memory",
    "kvstore",
    "kvstore-file",
    "sqlite",
    "sqlite-file",
    "sharded",
    "sharded-file",
)
PERSISTENT_SPECS = ("kvstore-file", "sqlite-file", "sharded-file")


def make_backend(spec: str, tmp_path) -> KVBackend:
    if spec == "memory":
        return MemoryBackend()
    if spec == "kvstore":
        return KVStore()
    if spec == "kvstore-file":
        return KVStore(tmp_path / "store.kv")
    if spec == "sqlite":
        return SQLiteBackend(batch_size=3)  # tiny batches: exercise draining
    if spec == "sqlite-file":
        return SQLiteBackend(tmp_path / "store.db", batch_size=3)
    if spec == "sharded":
        return ShardedBackend([MemoryBackend() for _ in range(3)])
    if spec == "sharded-file":
        return open_backend("sharded:3", tmp_path / "shards")
    raise AssertionError(spec)


def reopen_backend(spec: str, tmp_path) -> KVBackend:
    assert spec in PERSISTENT_SPECS
    return make_backend(spec, tmp_path)


@pytest.fixture(params=ALL_SPECS)
def backend(request, tmp_path):
    store = make_backend(request.param, tmp_path)
    yield store
    store.close()


class TestConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, KVBackend)

    def test_put_get_roundtrip(self, backend):
        backend.put(b"key", b"value")
        assert backend.get(b"key") == b"value"
        assert backend.get(b"missing") is None
        assert backend.get(b"missing", b"fallback") == b"fallback"

    def test_contains_and_len(self, backend):
        assert b"a" not in backend
        assert len(backend) == 0
        backend.put(b"a", b"1")
        backend.put(b"b", b"2")
        backend.put(b"a", b"3")  # overwrite, not a new key
        assert b"a" in backend
        assert len(backend) == 2

    def test_empty_value(self, backend):
        backend.put(b"key", b"")
        assert backend.get(b"key") == b""
        assert b"key" in backend

    def test_overwrite_keeps_insertion_position(self, backend):
        backend.put(b"z", b"1")
        backend.put(b"m", b"2")
        backend.put(b"a", b"3")
        backend.put(b"m", b"22")  # must stay in the middle
        assert list(backend.insertion_items()) == [
            (b"z", b"1"),
            (b"m", b"22"),
            (b"a", b"3"),
        ]

    def test_ordered_iteration(self, backend):
        pairs = {b"cc": b"3", b"aa": b"1", b"bb": b"2", b"dd": b"4"}
        for key, value in pairs.items():
            backend.put(key, value)
        assert list(backend.keys()) == sorted(pairs)
        assert list(backend.items()) == [
            (key, pairs[key]) for key in sorted(pairs)
        ]

    def test_put_batch_equals_sequential_puts(self, backend):
        items = [(b"b", b"1"), (b"a", b"2"), (b"c", b"3"), (b"a", b"4")]
        backend.put_batch(items)
        reference = MemoryBackend()
        for key, value in items:
            reference.put(key, value)
        assert list(backend.insertion_items()) == list(
            reference.insertion_items()
        )
        assert list(backend.items()) == list(reference.items())

    def test_delete(self, backend):
        backend.put(b"a", b"1")
        backend.put(b"b", b"2")
        assert backend.delete(b"a") is True
        assert backend.delete(b"a") is False
        assert b"a" not in backend
        assert len(backend) == 1
        assert list(backend.insertion_items()) == [(b"b", b"2")]

    def test_rejects_non_bytes(self, backend):
        with pytest.raises(StorageError):
            backend.put("text", b"value")
        with pytest.raises(StorageError):
            backend.put(b"key", 42)

    def test_interleaved_reads_and_writes(self, backend):
        # Reads between puts must see buffered writes (the SQLite backend
        # holds a pending batch; the sharded backend wraps it).
        for i in range(10):
            key = b"k%02d" % i
            backend.put(key, b"v%d" % i)
            assert backend.get(key) == b"v%d" % i
            assert key in backend
        assert len(backend) == 10


class TestPersistence:
    @pytest.mark.parametrize("spec", PERSISTENT_SPECS)
    def test_roundtrip_preserves_data_and_order(self, spec, tmp_path):
        store = make_backend(spec, tmp_path)
        store.put(b"z", b"1")
        store.put(b"m", b"2")
        store.put(b"a", b"3")
        store.put(b"m", b"22")
        store.close()

        reopened = reopen_backend(spec, tmp_path)
        assert len(reopened) == 3
        assert reopened.get(b"m") == b"22"
        assert list(reopened.insertion_items()) == [
            (b"z", b"1"),
            (b"m", b"22"),
            (b"a", b"3"),
        ]
        reopened.close()

    @pytest.mark.parametrize("spec", PERSISTENT_SPECS)
    def test_writes_after_reopen_extend_insertion_order(self, spec, tmp_path):
        store = make_backend(spec, tmp_path)
        store.put(b"first", b"1")
        store.put(b"second", b"2")
        store.close()

        reopened = reopen_backend(spec, tmp_path)
        reopened.put(b"third", b"3")
        reopened.put(b"first", b"11")  # overwrite keeps the oldest slot
        assert [key for key, _ in reopened.insertion_items()] == [
            b"first",
            b"second",
            b"third",
        ]
        reopened.close()


class TestSQLiteLockedRetry:
    """The busy-timeout + bounded-retry path for concurrent writers."""

    def test_busy_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            SQLiteBackend(busy_timeout_s=-1.0)

    def test_busy_timeout_pragma_applied(self, tmp_path):
        with SQLiteBackend(
            tmp_path / "store.db", busy_timeout_s=2.5
        ) as store:
            (timeout_ms,) = store._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout_ms == 2500

    def test_transient_lock_is_retried(self, tmp_path):
        import sqlite3

        store = SQLiteBackend(tmp_path / "store.db")
        calls = []

        def flaky_drain():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "committed"

        assert store._write_retry(flaky_drain) == "committed"
        assert len(calls) == 3
        store.close()

    def test_non_lock_errors_propagate_untouched(self, tmp_path):
        import sqlite3

        store = SQLiteBackend(tmp_path / "store.db")

        def broken():
            raise sqlite3.OperationalError("no such table: kv")

        with pytest.raises(sqlite3.OperationalError):
            store._write_retry(broken)
        store.close()

    def test_persistent_lock_surfaces_storage_error(
        self, tmp_path, monkeypatch
    ):
        import sqlite3

        import repro.index.backends as backends_module

        # No real sleeping through the exponential backoff schedule.
        monkeypatch.setattr(backends_module.time, "sleep", lambda _s: None)
        path = tmp_path / "store.db"
        store = SQLiteBackend(path, busy_timeout_s=0.005)
        store.put(b"k", b"v")
        # A second connection holds an exclusive write lock across every
        # retry, so the drain must give up with a clean StorageError
        # rather than leaking sqlite3.OperationalError upward.
        blocker = sqlite3.connect(path, timeout=0.005)
        blocker.execute("PRAGMA busy_timeout = 5")
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            with pytest.raises(StorageError):
                store.flush()
        finally:
            blocker.rollback()
            blocker.close()
            store.close()


class TestShardedBackend:
    def test_partitions_across_shards(self):
        shards = [MemoryBackend() for _ in range(4)]
        store = ShardedBackend(shards)
        for i in range(64):
            store.put(b"key-%02d" % i, b"v")
        populated = sum(1 for shard in shards if len(shard) > 0)
        assert populated > 1
        assert sum(len(shard) for shard in shards) == 64

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend([])

    def test_global_insertion_order_across_shards(self):
        store = ShardedBackend([MemoryBackend() for _ in range(5)])
        keys = [b"k%03d" % i for i in range(40)]
        rng = random.Random(3)
        rng.shuffle(keys)
        for key in keys:
            store.put(key, b"v")
        assert [key for key, _ in store.insertion_items()] == keys


class TestOpenBackend:
    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            open_backend("leveldb")

    def test_memory_cannot_persist(self, tmp_path):
        with pytest.raises(ConfigurationError):
            open_backend("memory", tmp_path / "x")

    def test_sharded_spec_with_count(self):
        store = open_backend("sharded:7")
        assert store.num_shards == 7

    def test_bad_shard_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            open_backend("sharded:zero")
        with pytest.raises(ConfigurationError):
            open_backend("sharded:0")

    def test_sharded_files_created(self, tmp_path):
        store = open_backend("sharded:2", tmp_path / "s")
        store.put(b"key", b"value")
        store.close()
        assert sorted(p.name for p in (tmp_path / "s").iterdir()) >= [
            "shard-00.db",
            "shard-01.db",
        ]


# -- streaming COUNT equivalence ---------------------------------------------


def synthetic_backup(
    num_chunks: int = 2500, num_unique: int = 300, seed: int = 9
) -> Backup:
    """A skewed synthetic trace: few hot chunks, a long cold tail."""
    rng = random.Random(seed)
    pool = [rng.randbytes(8) for _ in range(num_unique)]
    size_of = {fp: rng.randrange(1024, 8192) for fp in pool}
    fingerprints = [
        pool[min(int(rng.random() ** 3 * num_unique), num_unique - 1)]
        for _ in range(num_chunks)
    ]
    return Backup(
        label="synthetic",
        fingerprints=fingerprints,
        sizes=[size_of[fp] for fp in fingerprints],
    )


def assert_stats_identical(reference, stats):
    """Byte-identical COUNT: same tables *and* same iteration order."""
    assert list(stats.frequencies.items()) == list(
        reference.frequencies.items()
    )
    assert stats.sizes == reference.sizes
    for fingerprint in reference.frequencies:
        for side in ("left", "right"):
            expected = getattr(reference, side).get(fingerprint, {})
            actual = getattr(stats, side).get(fingerprint, {})
            assert list(actual.items()) == list(expected.items())


def count_stores_for(spec: str, tmp_path) -> CountStores:
    return CountStores(
        make_backend(spec, tmp_path / "meta"),
        make_backend(spec, tmp_path / "left"),
        make_backend(spec, tmp_path / "right"),
    )


class TestStreamingCountEquivalence:
    @pytest.mark.parametrize(
        "spec", ("memory", "kvstore", "sqlite", "sqlite-file", "sharded")
    )
    def test_identical_to_in_memory_count(self, spec, tmp_path):
        backup = synthetic_backup()
        reference = count_with_neighbors(backup)
        stores = count_stores_for(spec, tmp_path)
        # A small, non-round batch size forces many delta merges and
        # unaligned batch boundaries.
        stats = streaming_count(backup, stores, batch_size=257)
        assert_stats_identical(reference, stats)
        assert stats.unique_chunks == reference.unique_chunks

    def test_incremental_ingest_matches_single_pass(self):
        backup = synthetic_backup(num_chunks=900)
        reference = count_with_neighbors(backup)
        counter = StreamingCount(batch_size=64)
        for start in range(0, 900, 123):  # uneven slices across calls
            counter.ingest(
                backup.fingerprints[start : start + 123],
                backup.sizes[start : start + 123],
            )
        assert counter.total_chunks == 900
        assert_stats_identical(reference, counter.finalize())

    def test_mismatched_lengths_rejected(self):
        counter = StreamingCount()
        with pytest.raises(ConfigurationError):
            counter.ingest([b"aa"], [1, 2])

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingCount(batch_size=0)

    def test_empty_count_finalizes_to_empty_stats(self):
        # Matches count_with_neighbors on an empty backup.
        stats = StreamingCount().finalize()
        assert stats.unique_chunks == 0
        assert stats.frequencies == {}
        assert stats.left.get(b"x") == {}


class TestCountStoresLayouts:
    @pytest.mark.parametrize("backend", ("kvstore", "sqlite", "sharded:2"))
    def test_open_then_detect_roundtrip(self, backend, tmp_path):
        backup = synthetic_backup(num_chunks=400, num_unique=60)
        reference = count_with_neighbors(backup)
        stores = CountStores.open(tmp_path / "s", backend)
        streaming_count(backup, stores, batch_size=97)
        stores.close()

        from repro.attacks.streaming import BackendChunkStats

        reloaded = BackendChunkStats.from_stores(
            CountStores.detect(tmp_path / "s")
        )
        assert_stats_identical(reference, reloaded)

    def test_detect_missing_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CountStores.detect(tmp_path / "nothing")

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CountStores.open(tmp_path, "leveldb")
