"""Tests for the scenario engine: specs, cells, cache, runner."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.scenarios.cache import ResultCache, cell_key
from repro.scenarios.cells import (
    CELL_EXECUTORS,
    build_attack,
    execute_cell,
    register_cell_kind,
)
from repro.scenarios.runner import Runner, RunStats, rows_from
from repro.scenarios.spec import (
    PAIR,
    SLIDING,
    VARY_AUXILIARY,
    VARY_TARGET,
    Anchor,
    AttackParams,
    Cell,
    ScenarioSpec,
)

LENGTHS = {"fsl": 5, "vm": 13, "synthetic": 11, "storage-fsl": 5}


class TestAnchor:
    def test_pair_resolves_negative_indices(self):
        anchor = Anchor(mode=PAIR, auxiliary=-2, target=-1)
        assert anchor.resolve(5) == [(3, 4, ())]

    def test_pair_out_of_range(self):
        anchor = Anchor(mode=PAIR, auxiliary=7, target=-1)
        with pytest.raises(ConfigurationError):
            anchor.resolve(5)

    def test_vary_auxiliary(self):
        anchor = Anchor(mode=VARY_AUXILIARY, target=-1)
        assert anchor.resolve(4) == [(0, 3, ()), (1, 3, ()), (2, 3, ())]

    def test_vary_auxiliary_capped(self):
        anchor = Anchor(mode=VARY_AUXILIARY, target=10, max_auxiliary=2)
        assert anchor.resolve(12) == [(0, 10, ()), (1, 10, ())]

    def test_vary_target(self):
        anchor = Anchor(mode=VARY_TARGET, auxiliary=0)
        assert anchor.resolve(4) == [(0, 1, ()), (0, 2, ()), (0, 3, ())]

    def test_sliding_tags_each_shift(self):
        anchor = Anchor(mode=SLIDING, shifts=(1, 2))
        assert anchor.resolve(4) == [
            (0, 1, (("s", 1),)),
            (1, 2, (("s", 1),)),
            (2, 3, (("s", 1),)),
            (0, 2, (("s", 2),)),
            (1, 3, (("s", 2),)),
        ]

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Anchor(mode="sideways")

    def test_bad_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            Anchor(mode=SLIDING, shifts=(0,)).resolve(4)


class TestScenarioSpecExpansion:
    def test_canonical_nesting_order(self):
        spec = ScenarioSpec(
            name="t",
            datasets=("fsl", "vm"),
            attacks=("basic", "locality"),
            anchor=Anchor(mode=PAIR, auxiliary=0, target=1),
            leakage_rates=(0.0, 0.001),
        )
        cells = spec.expand(LENGTHS)
        coords = [
            (cell.param("dataset"), cell.param("attack"), cell.param("leakage_rate"))
            for cell in cells
        ]
        assert coords == [
            ("fsl", "basic", 0.0),
            ("fsl", "basic", 0.001),
            ("fsl", "locality", 0.0),
            ("fsl", "locality", 0.001),
            ("vm", "basic", 0.0),
            ("vm", "basic", 0.001),
            ("vm", "locality", 0.0),
            ("vm", "locality", 0.001),
        ]

    def test_expansion_is_deterministic(self):
        spec = ScenarioSpec(name="t", datasets=("fsl", "synthetic"))
        assert spec.expand(LENGTHS) == spec.expand(LENGTHS)

    def test_per_dataset_overrides(self):
        spec = ScenarioSpec(
            name="t",
            datasets=("fsl", "vm"),
            attacks=("locality", "advanced"),
            attacks_by_dataset=(("vm", ("locality",)),),
            anchor=Anchor(mode=PAIR, auxiliary=0, target=1),
            anchors_by_dataset=(("vm", Anchor(mode=PAIR, auxiliary=2, target=3)),),
        )
        cells = spec.expand(LENGTHS)
        assert [cell.param("attack") for cell in cells] == [
            "locality",
            "advanced",
            "locality",
        ]
        assert cells[-1].param("auxiliary") == 2
        assert cells[-1].param("target") == 3

    def test_param_tags_arity_checked(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="t",
                params=(AttackParams(), AttackParams(u=2)),
                param_tags=((("parameter", "u"),),),
            )

    def test_param_and_anchor_tags_reach_cells(self):
        spec = ScenarioSpec(
            name="t",
            datasets=("fsl",),
            params=(AttackParams(u=7),),
            param_tags=(((("parameter", "u")), ("value", 7)),),
            anchor=Anchor(mode=SLIDING, shifts=(2,)),
        )
        cell = spec.expand(LENGTHS)[0]
        tags = dict(cell.tags)
        assert tags["parameter"] == "u"
        assert tags["value"] == 7
        assert tags["s"] == 2
        assert tags["u"] == 7

    def test_basic_attack_normalizes_unused_params(self):
        # BasicAttack ignores (u, v, w): cells differing only in those
        # must share one computation/cache entry, while the requested
        # values remain visible as row tags.
        spec = ScenarioSpec(
            name="t",
            datasets=("fsl",),
            attacks=("basic",),
            params=(AttackParams(u=1, v=15, w=100), AttackParams(u=5, v=30, w=200)),
            anchor=Anchor(mode=PAIR, auxiliary=0, target=1),
        )
        first, second = spec.expand(LENGTHS)
        assert first.params == second.params
        assert cell_key(first) == cell_key(second)
        assert dict(first.tags)["u"] == 1
        assert dict(second.tags)["u"] == 5

    def test_seed_normalized_at_zero_leakage(self):
        # The seed only feeds the leakage sample; ciphertext-only cells
        # from differently-seeded specs must share one cache entry.
        def cell_at(seed, rates):
            spec = ScenarioSpec(
                name="t",
                datasets=("fsl",),
                anchor=Anchor(mode=PAIR, auxiliary=0, target=1),
                leakage_rates=rates,
                seed=seed,
            )
            return spec.expand(LENGTHS)[0]

        assert cell_key(cell_at(0, (0.0,))) == cell_key(cell_at(5, (0.0,)))
        assert cell_key(cell_at(0, (0.001,))) != cell_key(cell_at(5, (0.001,)))

    def test_custom_kind_usable_from_spec(self, echo_kind):
        spec = ScenarioSpec(name="t", kind="echo", datasets=("fsl",))
        assert spec.kind == "echo"

    def test_locality_attack_keeps_params_distinct(self):
        spec = ScenarioSpec(
            name="t",
            datasets=("fsl",),
            attacks=("locality",),
            params=(AttackParams(u=1), AttackParams(u=5)),
            anchor=Anchor(mode=PAIR, auxiliary=0, target=1),
        )
        first, second = spec.expand(LENGTHS)
        assert cell_key(first) != cell_key(second)

    def test_non_attack_kinds_ignore_attack_axes(self):
        frequency = ScenarioSpec(
            name="t", kind="frequency", datasets=("fsl", "vm")
        )
        assert len(frequency.expand(LENGTHS)) == 2
        storage = ScenarioSpec(
            name="t",
            kind="storage_saving",
            datasets=("fsl",),
            schemes=("mle", "combined"),
        )
        params = [dict(cell.params) for cell in storage.expand(LENGTHS)]
        assert params == [
            {"dataset": "fsl", "scheme": "mle"},
            {"dataset": "fsl", "scheme": "combined"},
        ]

    def test_extra_params_merged(self):
        spec = ScenarioSpec(
            name="t",
            kind="metadata",
            datasets=("storage-fsl",),
            schemes=("mle",),
            extra=(("cache_budget_bytes", 1024),),
        )
        cell = spec.expand(LENGTHS)[0]
        assert cell.param("cache_budget_bytes") == 1024

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="t", kind="telepathy")


class TestFigureScenarios:
    """The declarative figure grids expand to the historical cell counts
    (row counts for the attack figures) without generating any dataset."""

    @pytest.mark.parametrize(
        "number,cells",
        [("4", 32), ("5", 66), ("6", 66), ("7", 85), ("8", 20), ("9", 30),
         ("10", 24), ("11", 8), ("13", 2), ("14", 2), ("1", 2)],
    )
    def test_cell_counts(self, number, cells):
        from repro.analysis.figures import FIGURE_SCENARIOS

        scenario = FIGURE_SCENARIOS[number]()
        assert len(scenario.cells(LENGTHS)) == cells


class TestCellKey:
    def test_tags_do_not_affect_key(self):
        a = Cell(kind="attack", params=(("dataset", "fsl"),), tags=())
        b = Cell(
            kind="attack",
            params=(("dataset", "fsl"),),
            tags=(("parameter", "u"),),
        )
        assert cell_key(a) == cell_key(b)

    def test_params_affect_key(self):
        a = Cell(kind="attack", params=(("u", 1),))
        b = Cell(kind="attack", params=(("u", 2),))
        assert cell_key(a) != cell_key(b)
        assert cell_key(a) != cell_key(Cell(kind="other", params=(("u", 1),)))

    def test_non_primitive_params_rejected(self):
        with pytest.raises(TypeError):
            cell_key(Cell(kind="attack", params=(("u", (1, 2)),)))


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        rows = ((("value", 2), ("rate", 0.125)),)
        cache.store(cell, rows)
        assert cache.load(cell) == rows
        assert len(cache) == 1

    def test_miss_on_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(Cell(kind="echo", params=(("x", 1),))) is None

    def test_miss_on_corrupt_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        path = cache.store(cell, ((("value", 2),),))
        path.write_text("{torn", encoding="utf-8")
        assert cache.load(cell) is None

    def test_miss_on_foreign_content(self, tmp_path):
        # A file under the right name but describing a different cell
        # (hash collision paranoia) must not be served.
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        other = Cell(kind="echo", params=(("x", 2),))
        stored = cache.store(other, ((("value", 4),),))
        stored.rename(cache._path(cell_key(cell)))
        assert cache.load(cell) is None

    def test_len_ignores_orphaned_temp_files(self, tmp_path):
        # A writer killed between mkstemp and os.replace leaves a temp
        # file behind; it must count as neither an entry nor a hit.
        cache = ResultCache(tmp_path)
        cache.store(Cell(kind="echo", params=(("x", 1),)), ((("v", 1),),))
        (tmp_path / ".partial-orphan.tmp").write_text("{", encoding="utf-8")
        assert len(cache) == 1

    def test_float_rows_survive_json_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        rows = ((("rate", round(0.1265348, 5)), ("count", 30344)),)
        cache.store(cell, rows)
        loaded = cache.load(cell)
        assert loaded == rows
        assert json.dumps(loaded) == json.dumps(rows)

    def test_truncated_entry_detected_and_recomputed(self, tmp_path):
        # Truncation tears the JSON, which the parse already catches —
        # but a truncated-then-"repaired" file (valid JSON, damaged
        # rows) must fall to the checksum.
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        path = cache.store(cell, ((("value", 2), ("rate", 0.5)),))
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: len(raw) // 2], encoding="utf-8")
        assert cache.load(cell) is None

    def test_bit_flip_detected_discarded_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        rows = ((("value", 271828),),)
        path = cache.store(cell, rows)
        # Flip one digit inside the rows payload: still valid JSON, still
        # this cell's kind/params, but not what was computed.
        damaged = path.read_text(encoding="utf-8").replace("271828", "271829")
        path.write_text(damaged, encoding="utf-8")
        assert cache.load(cell) is None
        # The corrupt entry was discarded on detection...
        assert len(cache) == 0
        # ...so recomputing and re-storing serves clean rows again.
        cache.store(cell, rows)
        assert cache.load(cell) == rows

    def test_version1_entries_miss_after_checksum_upgrade(self, tmp_path):
        # Entries written before CACHE_VERSION 2 carry no checksum; the
        # version bump re-keys them so they miss instead of loading.
        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        legacy = {
            "kind": "echo",
            "params": [["x", 1]],
            "rows": [[["value", 2]]],
        }
        cache._path(cell_key(cell)).write_text(
            json.dumps(legacy), encoding="utf-8"
        )
        assert cache.load(cell) is None

    def test_store_survives_injected_disk_errors(self, tmp_path):
        from repro import faults

        cache = ResultCache(tmp_path)
        cell = Cell(kind="echo", params=(("x", 1),))
        rows = ((("value", 2),),)
        try:
            # First write attempt fails, the bounded retry lands it.
            faults.install(
                faults.FaultPlan.from_dict(
                    {"rules": [{"site": "disk.write", "at": 1, "times": 1}]}
                )
            )
            assert cache.store(cell, rows) is not None
            assert cache.load(cell) == rows
            # A persistently failing disk degrades the store to a no-op
            # instead of raising: the rows are computed, just uncached.
            other = Cell(kind="echo", params=(("x", 2),))
            faults.install(
                faults.FaultPlan.from_dict(
                    {"rules": [{"site": "disk.write"}]}
                )
            )
            assert cache.store(other, rows) is None
            assert cache.load(other) is None
        finally:
            faults.clear()


class TestRowsFrom:
    def test_fields_shadow_tags(self):
        from repro.scenarios.runner import CellResult

        cell = Cell(
            kind="echo",
            params=(("x", 1),),
            tags=(("auxiliary", 3), ("dataset", "fsl")),
        )
        result = CellResult(cell, ((("auxiliary", "Mar 22"), ("rate", 0.5)),))
        rows = rows_from([result], ("dataset", "auxiliary", "rate"))
        assert rows == [["fsl", "Mar 22", 0.5]]

    def test_missing_column_raises(self):
        from repro.scenarios.runner import CellResult

        result = CellResult(Cell(kind="echo", params=()), ((("rate", 0.5),),))
        with pytest.raises(KeyError):
            rows_from([result], ("nope",))


@pytest.fixture()
def echo_kind():
    calls = []

    def run_echo(params):
        calls.append(params["x"])
        return ((("value", params["x"] * 2),),)

    register_cell_kind("echo", run_echo)
    yield calls
    CELL_EXECUTORS.pop("echo", None)


def echo_cells(xs):
    return [Cell(kind="echo", params=(("x", x),)) for x in xs]


class TestRunner:
    def test_serial_order_preserved(self, echo_kind):
        results = Runner(jobs=1).run_cells(echo_cells([3, 1, 2]))
        assert [dict(r.rows[0])["value"] for r in results] == [6, 2, 4]
        assert all(r.source == "executed" for r in results)

    def test_duplicates_execute_once(self, echo_kind):
        stats = RunStats()
        results = Runner(jobs=1).run_cells(echo_cells([5, 5, 5]), stats=stats)
        assert [dict(r.rows[0])["value"] for r in results] == [10, 10, 10]
        assert echo_kind == [5]
        assert stats.executed == 1
        assert stats.duplicates == 2

    def test_cache_skips_completed_cells(self, echo_kind, tmp_path):
        cells = echo_cells([1, 2])
        first = RunStats()
        Runner(jobs=1, cache=tmp_path).run_cells(cells, stats=first)
        assert first.executed == 2
        second = RunStats()
        results = Runner(jobs=1, cache=tmp_path).run_cells(cells, stats=second)
        assert second.executed == 0
        assert second.cache_hits == 2
        assert [dict(r.rows[0])["value"] for r in results] == [2, 4]
        assert echo_kind == [1, 2]  # not re-executed

    def test_partial_cache_runs_only_missing(self, echo_kind, tmp_path):
        Runner(jobs=1, cache=tmp_path).run_cells(echo_cells([1]))
        stats = RunStats()
        Runner(jobs=1, cache=tmp_path).run_cells(
            echo_cells([1, 2]), stats=stats
        )
        assert stats.cache_hits == 1
        assert stats.executed == 1
        assert echo_kind == [1, 2]

    def test_process_pool_matches_serial(self, echo_kind):
        # fork start method: workers inherit the registered test kind.
        cells = echo_cells([4, 5, 6, 7])
        serial = Runner(jobs=1).run_cells(cells)
        parallel = Runner(jobs=2).run_cells(cells)
        assert [r.rows for r in parallel] == [r.rows for r in serial]

    def test_worker_failure_still_persists_completed_cells(self, tmp_path):
        def flaky(params):
            if params["x"] == 13:
                raise ConfigurationError("boom")
            return ((("value", params["x"]),),)

        register_cell_kind("flaky", flaky)
        try:
            cells = [
                Cell(kind="flaky", params=(("x", x),)) for x in (1, 2, 13, 3)
            ]
            with pytest.raises(ConfigurationError):
                Runner(jobs=2, cache=tmp_path).run_cells(cells)
            # The three good cells were persisted despite the failure, so
            # a retry resumes instead of recomputing them.
            assert len(ResultCache(tmp_path)) == 3
            stats = RunStats()
            with pytest.raises(ConfigurationError):
                Runner(jobs=2, cache=tmp_path).run_cells(cells, stats=stats)
            assert stats.cache_hits == 3
        finally:
            CELL_EXECUTORS.pop("flaky", None)

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            execute_cell(Cell(kind="telepathy", params=()))

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)

    @pytest.mark.parametrize("mode", ("raise", "exit"))
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_injected_cell_crash_retried_identically(
        self, echo_kind, jobs, mode
    ):
        from repro import faults

        cells = echo_cells([4, 5, 6, 7])
        clean = Runner(jobs=jobs).run_cells(cells)
        try:
            faults.install(
                faults.FaultPlan.from_dict(
                    {
                        "rules": [
                            {
                                "site": "cell.crash",
                                "at": 2,
                                "times": 1,
                                "mode": mode,
                            }
                        ]
                    }
                )
            )
            crashed = Runner(jobs=jobs).run_cells(cells)
        finally:
            faults.clear()
        assert [r.rows for r in crashed] == [r.rows for r in clean]

    def test_cell_crash_exhausts_retries(self, echo_kind):
        from repro import faults
        from repro.faults import WorkerCrashError

        try:
            faults.install(
                faults.FaultPlan.from_dict(
                    {"rules": [{"site": "cell.crash"}]}  # crash every time
                )
            )
            with pytest.raises(WorkerCrashError):
                Runner(jobs=1).run_cells(echo_cells([1]))
        finally:
            faults.clear()


class TestBuildAttack:
    def test_known_attacks(self):
        assert build_attack("basic", 1, 15, 10).name == "basic"
        locality = build_attack("locality", 2, 20, 1000)
        assert (locality.u, locality.v, locality.w) == (2, 20, 1000)
        advanced = build_attack("advanced", 1, 15, 10)
        assert advanced.name == "advanced"

    def test_unknown_attack(self):
        with pytest.raises(ConfigurationError):
            build_attack("quantum", 1, 1, 1)


class TestEndToEnd:
    """Real cells through the engine: figure output is identical at any
    job count, and cached reruns are served without recomputation."""

    def test_fig1_identical_across_job_counts(self):
        from repro.analysis.figures import fig1_frequency_skew

        datasets = ("fsl", "storage-fsl")  # two cheap cells -> real fan-out
        serial = fig1_frequency_skew(datasets=datasets)
        parallel = fig1_frequency_skew(datasets=datasets, jobs=2)
        assert serial.rows == parallel.rows
        assert serial.columns == parallel.columns

    def test_fig1_cache_round_trip(self, tmp_path):
        from repro.analysis.figures import fig1_frequency_skew

        first = fig1_frequency_skew(datasets=("fsl",), cache=tmp_path)
        again = fig1_frequency_skew(datasets=("fsl",), cache=tmp_path)
        assert first.rows == again.rows
        assert len(ResultCache(tmp_path)) == 1
