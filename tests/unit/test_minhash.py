"""Tests for MinHash encryption (Algorithm 4), content level."""

import random

from repro.chunking import Fingerprinter
from repro.crypto.keymanager import KeyManager
from repro.crypto.mle import ConvergentEncryption
from repro.defenses.minhash import MinHashEncryptor
from repro.defenses.segmentation import SegmentationSpec

SPEC = SegmentationSpec(min_bytes=16 * 1024, avg_bytes=32 * 1024, max_bytes=64 * 1024)


def chunks_of(total, size=4096, seed=0):
    rng = random.Random(seed)
    return [rng.randbytes(size) for _ in range(total)]


def encryptor(key_manager=None):
    return MinHashEncryptor(
        ConvergentEncryption(), key_manager=key_manager, spec=SPEC
    )


class TestSegmentKeys:
    def test_key_derived_from_minimum_fingerprint(self):
        enc = encryptor()
        assert enc.segment_key(b"min-fp") == enc.segment_key(b"min-fp")
        assert enc.segment_key(b"a") != enc.segment_key(b"b")

    def test_key_manager_backed_keys(self):
        manager = KeyManager(b"s" * 32)
        enc = encryptor(key_manager=manager)
        key = enc.segment_key(b"min-fp")
        assert manager.verify_key(b"min-fp", key)

    def test_one_key_query_per_segment(self):
        manager = KeyManager(b"s" * 32)
        enc = encryptor(key_manager=manager)
        stream = chunks_of(32)
        results, _ = enc.encrypt_stream(stream)
        assert manager.queries_served == len(results)
        assert manager.queries_served < len(stream)


class TestEncryptStream:
    def test_roundtrip(self):
        enc = encryptor()
        stream = chunks_of(20, seed=1)
        results, recipe = enc.encrypt_stream(stream)
        ciphertexts = [c for r in results for c in r.ciphertexts]
        assert enc.decrypt_stream(ciphertexts, recipe) == stream

    def test_identical_streams_dedup_perfectly(self):
        enc = encryptor()
        stream = chunks_of(30, seed=2)
        first, _ = enc.encrypt_stream(stream)
        second, _ = enc.encrypt_stream(stream)
        tags_a = [c.tag for r in first for c in r.ciphertexts]
        tags_b = [c.tag for r in second for c in r.ciphertexts]
        assert tags_a == tags_b

    def test_broder_property_similar_streams_mostly_dedup(self):
        """Streams differing in one chunk share most segment keys, so most
        identical chunks still encrypt identically (Broder's theorem)."""
        enc = encryptor()
        stream = chunks_of(60, seed=3)
        modified = list(stream)
        modified[30] = b"\xff" * 4096
        tags_a = {
            c.tag for r in enc.encrypt_stream(stream)[0] for c in r.ciphertexts
        }
        tags_b = {
            c.tag
            for r in enc.encrypt_stream(modified)[0]
            for c in r.ciphertexts
        }
        shared = len(tags_a & tags_b) / len(tags_a)
        assert shared > 0.7, f"only {shared:.0%} of tags survived a 1-chunk edit"

    def test_different_segments_may_diverge(self):
        """The same plaintext chunk in segments with different minimum
        fingerprints yields different ciphertexts — the defense's
        frequency-perturbing effect."""
        enc = encryptor()
        repeated = b"\x42" * 4096
        # Embed the repeated chunk into two very different contexts.
        stream_a = chunks_of(10, seed=4) + [repeated]
        stream_b = chunks_of(10, seed=5) + [repeated]
        tag_a = enc.encrypt_stream(stream_a)[0][-1].ciphertexts[-1].tag
        tag_b = enc.encrypt_stream(stream_b)[0][-1].ciphertexts[-1].tag
        # With distinct 10-chunk contexts the minima differ w.h.p.
        assert tag_a != tag_b

    def test_recipe_covers_every_chunk(self):
        enc = encryptor()
        stream = chunks_of(25, seed=6)
        results, recipe = enc.encrypt_stream(stream)
        assert len(recipe) == len(stream)
        assert sum(len(r.ciphertexts) for r in results) == len(stream)

    def test_minimum_fingerprint_is_actual_minimum(self):
        enc = encryptor()
        fingerprinter = Fingerprinter("sha256")
        stream = chunks_of(40, seed=7)
        results, _ = enc.encrypt_stream(stream)
        for result in results:
            segment_fps = [
                fingerprinter(stream[i])
                for i in range(result.segment.start, result.segment.end)
            ]
            assert result.minimum_fingerprint == min(segment_fps)

    def test_empty_stream(self):
        enc = encryptor()
        results, recipe = enc.encrypt_stream([])
        assert results == []
        assert len(recipe) == 0
