"""Tests for the fingerprint-level defense pipelines (§7.1)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.defenses.pipeline import (
    DefensePipeline,
    DefenseScheme,
    padded_size,
)
from repro.defenses.segmentation import SegmentationSpec

SPEC = SegmentationSpec(min_bytes=16 * 1024, avg_bytes=32 * 1024, max_bytes=64 * 1024)


def backup(tokens, sizes=None, label="b"):
    tokens = [t.encode() for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


class TestPaddedSize:
    @pytest.mark.parametrize(
        "plain,expected", [(0, 16), (1, 16), (15, 16), (16, 32), (4096, 4112)]
    )
    def test_values(self, plain, expected):
        assert padded_size(plain) == expected


class TestMLEPipeline:
    def test_deterministic_bijection(self):
        pipeline = DefensePipeline(DefenseScheme.MLE)
        encrypted = pipeline.encrypt_backup(backup(["a", "b", "a"]))
        fps = encrypted.ciphertext.fingerprints
        assert fps[0] == fps[2] != fps[1]

    def test_truth_maps_back(self):
        pipeline = DefensePipeline(DefenseScheme.MLE)
        source = backup(["a", "b", "a", "c"])
        encrypted = pipeline.encrypt_backup(source)
        for cipher_fp, plain_fp in zip(
            encrypted.ciphertext.fingerprints, source.fingerprints
        ):
            assert encrypted.truth[cipher_fp] == plain_fp

    def test_sizes_are_padded(self):
        pipeline = DefensePipeline(DefenseScheme.MLE)
        source = backup(["a", "b"], sizes=[100, 4096])
        encrypted = pipeline.encrypt_backup(source)
        assert encrypted.ciphertext.sizes == [112, 4112]

    def test_preserves_order_and_length(self):
        pipeline = DefensePipeline(DefenseScheme.MLE)
        source = backup(["a", "b", "c", "b"])
        encrypted = pipeline.encrypt_backup(source)
        assert len(encrypted.ciphertext) == 4
        # order preserved: positions of the duplicate agree
        fps = encrypted.ciphertext.fingerprints
        assert fps[1] == fps[3]

    def test_output_fingerprint_length_matches_input(self):
        pipeline = DefensePipeline(DefenseScheme.MLE)
        source = Backup(label="b", fingerprints=[b"\x01" * 6], sizes=[4096])
        encrypted = pipeline.encrypt_backup(source)
        assert len(encrypted.ciphertext.fingerprints[0]) == 6


class TestMinHashPipeline:
    def test_same_context_dedups(self, tiny_fsl_series):
        pipeline = DefensePipeline(DefenseScheme.MINHASH, segmentation=SPEC)
        first = pipeline.encrypt_backup(tiny_fsl_series.backups[0], 0)
        again = pipeline.encrypt_backup(tiny_fsl_series.backups[0], 0)
        assert first.ciphertext.fingerprints == again.ciphertext.fingerprints

    def test_creates_ciphertext_variants(self, tiny_fsl_series):
        """MinHash encryption must map some plaintext chunks to multiple
        ciphertext chunks (the frequency-perturbing effect)."""
        pipeline = DefensePipeline(DefenseScheme.MINHASH, segmentation=SPEC)
        encrypted = pipeline.encrypt_series(tiny_fsl_series)
        plaintext_unique = set()
        for b in tiny_fsl_series.backups:
            plaintext_unique |= b.unique_fingerprints()
        ciphertext_unique = set()
        for eb in encrypted.backups:
            ciphertext_unique |= set(eb.ciphertext.fingerprints)
        assert len(ciphertext_unique) > len(plaintext_unique)

    def test_truth_consistent(self, tiny_fsl_series):
        pipeline = DefensePipeline(DefenseScheme.MINHASH, segmentation=SPEC)
        source = tiny_fsl_series.backups[0]
        encrypted = pipeline.encrypt_backup(source, 0)
        # every ciphertext fp maps to a plaintext fp that exists
        plain_unique = source.unique_fingerprints()
        for plain_fp in encrypted.truth.values():
            assert plain_fp in plain_unique

    def test_num_segments_recorded(self, tiny_fsl_series):
        pipeline = DefensePipeline(DefenseScheme.MINHASH, segmentation=SPEC)
        encrypted = pipeline.encrypt_backup(tiny_fsl_series.backups[0], 0)
        assert encrypted.num_segments > 1


class TestScramblePipeline:
    def test_multiset_preserved(self, tiny_fsl_series):
        source = tiny_fsl_series.backups[0]
        mle = DefensePipeline(DefenseScheme.MLE).encrypt_backup(source, 0)
        scrambled = DefensePipeline(
            DefenseScheme.SCRAMBLE, segmentation=SPEC, seed=3
        ).encrypt_backup(source, 0)
        assert sorted(mle.ciphertext.fingerprints) == sorted(
            scrambled.ciphertext.fingerprints
        )

    def test_order_changed(self, tiny_fsl_series):
        source = tiny_fsl_series.backups[0]
        mle = DefensePipeline(DefenseScheme.MLE).encrypt_backup(source, 0)
        scrambled = DefensePipeline(
            DefenseScheme.SCRAMBLE, segmentation=SPEC, seed=3
        ).encrypt_backup(source, 0)
        assert mle.ciphertext.fingerprints != scrambled.ciphertext.fingerprints

    def test_scramble_deterministic_per_seed(self, tiny_fsl_series):
        source = tiny_fsl_series.backups[0]
        a = DefensePipeline(
            DefenseScheme.SCRAMBLE, segmentation=SPEC, seed=3
        ).encrypt_backup(source, 0)
        b = DefensePipeline(
            DefenseScheme.SCRAMBLE, segmentation=SPEC, seed=3
        ).encrypt_backup(source, 0)
        c = DefensePipeline(
            DefenseScheme.SCRAMBLE, segmentation=SPEC, seed=4
        ).encrypt_backup(source, 0)
        assert a.ciphertext.fingerprints == b.ciphertext.fingerprints
        assert a.ciphertext.fingerprints != c.ciphertext.fingerprints


class TestCombinedPipeline:
    def test_combined_differs_from_both_parts(self, tiny_fsl_series):
        source = tiny_fsl_series.backups[0]
        minhash = DefensePipeline(
            DefenseScheme.MINHASH, segmentation=SPEC, seed=3
        ).encrypt_backup(source, 0)
        combined = DefensePipeline(
            DefenseScheme.COMBINED, segmentation=SPEC, seed=3
        ).encrypt_backup(source, 0)
        # same multiset of ciphertext fps as minhash-only (scrambling does
        # not change what is encrypted, only the order) ...
        assert sorted(minhash.ciphertext.fingerprints) == sorted(
            combined.ciphertext.fingerprints
        )
        # ... but a different upload order.
        assert minhash.ciphertext.fingerprints != combined.ciphertext.fingerprints

    def test_series_encryption(self, tiny_fsl_series):
        pipeline = DefensePipeline(DefenseScheme.COMBINED, segmentation=SPEC)
        encrypted = pipeline.encrypt_series(tiny_fsl_series)
        assert len(encrypted) == len(tiny_fsl_series)
        assert encrypted.scheme is DefenseScheme.COMBINED
        ct_series = encrypted.ciphertext_series()
        assert len(ct_series.backups) == len(tiny_fsl_series)


def _colliding_tokens(pipeline: DefensePipeline) -> list[str]:
    """Two tokens whose truncated MLE fingerprints collide."""
    seen: dict[bytes, str] = {}
    for index in range(10_000):
        token = f"t{index}"
        cipher_fp = pipeline._mle_fingerprint(token.encode(), 1)
        if cipher_fp in seen:
            return [seen[cipher_fp], token]
        seen[cipher_fp] = token
    raise AssertionError("no 1-byte collision in 10k tokens")


class TestCollisionDetection:
    """Both encryption paths must reject truth-map collisions, not
    silently mis-score attacks against a corrupted ground truth."""

    def test_mle_path_raises_on_collision(self):
        pipeline = DefensePipeline(DefenseScheme.MLE, fingerprint_bytes=1)
        tokens = _colliding_tokens(pipeline)
        with pytest.raises(ConfigurationError, match="collision"):
            pipeline.encrypt_backup(backup(tokens))

    def test_segmented_path_raises_on_collision(self):
        pipeline = DefensePipeline(
            DefenseScheme.SCRAMBLE, segmentation=SPEC, fingerprint_bytes=1
        )
        tokens = _colliding_tokens(pipeline)
        with pytest.raises(ConfigurationError, match="collision"):
            pipeline.encrypt_backup(backup(tokens))

    def test_mle_path_accepts_repeats(self):
        # Repeated chunks are not collisions: same plaintext, same cipher.
        pipeline = DefensePipeline(DefenseScheme.MLE, fingerprint_bytes=8)
        encrypted = pipeline.encrypt_backup(backup(["a", "b", "a", "a"]))
        assert len(encrypted.truth) == 2
