"""Columnar trace format + sharded parallel COUNT differential tests.

The trace-scale stack must be *byte-identical* to the in-RAM reference at
every seam:

* the columnar round trip (write → mmap → decode) reproduces the original
  backups exactly, vocabulary spilled to disk or not;
* :func:`~repro.attacks.sharded.sharded_count` at any ``jobs`` value
  equals :func:`~repro.attacks.frequency.count_with_neighbors` and
  :func:`~repro.attacks.interning.interned_count` — tables *and*
  iteration order — under both accel modes;
* :func:`~repro.attacks.sharded.columnar_attack_report` equals the full
  in-RAM :class:`~repro.attacks.evaluation.AttackEvaluator` pipeline;
* generation and the persistent COUNT both resume safely after an
  interrupt (manifest / completion marker as the only commit points).
"""

import os

import pytest

from repro.attacks.evaluation import AttackEvaluator
from repro.attacks.frequency import count_with_neighbors
from repro.attacks.interning import (
    MAX_VOCABULARY,
    PAIR_SHIFT,
    check_vocabulary_capacity,
    interned_count,
)
from repro.attacks.persistent import load_chunk_stats, persist_columnar_stats
from repro.attacks.sharded import columnar_attack_report, sharded_count
from repro.common import accel
from repro.common.errors import ConfigurationError
from repro.datasets.columnar import (
    ColumnarTrace,
    ColumnarTraceWriter,
    StreamConfig,
    ensure_columnar,
    ensure_stream_columnar,
    synthesize_columnar,
    write_series,
)
from repro.datasets.model import Backup, BackupSeries
from repro.defenses.pipeline import DefensePipeline, DefenseScheme


@pytest.fixture(params=["accelerated", "fallback"])
def count_mode(request, monkeypatch):
    """Run every differential under both accel modes."""
    if request.param == "fallback":
        monkeypatch.setattr(accel, "numpy", None)
    elif accel.numpy is None:
        pytest.skip("numpy unavailable; accelerated path cannot run")
    return request.param


def small_series() -> BackupSeries:
    import random

    rng = random.Random(13)
    pool = [rng.randbytes(16) for _ in range(400)]
    backups = []
    for index in range(3):
        fingerprints = [
            rng.choice(pool) if rng.random() < 0.8 else rng.randbytes(16)
            for _ in range(2_500)
        ]
        backups.append(
            Backup(
                label=f"b{index}",
                fingerprints=fingerprints,
                sizes=[rng.randrange(512, 8192) for _ in fingerprints],
            )
        )
    return BackupSeries(name="unit-columnar", backups=backups)


def assert_stats_identical(fast, reference):
    """Full four-table equality, including iteration order."""
    assert dict(fast.frequencies.items()) == dict(reference.frequencies.items())
    assert list(fast.frequencies) == list(reference.frequencies)
    assert dict(fast.sizes.items()) == dict(reference.sizes.items())
    assert list(fast.sizes) == list(reference.sizes)
    for side in ("left", "right"):
        ours = getattr(fast, side)
        oracle = getattr(reference, side)
        decoded = {key: dict(table.items()) for key, table in ours.items()}
        expected = {key: dict(table.items()) for key, table in oracle.items()}
        assert decoded == expected
        assert list(decoded) == list(expected)
        for key in expected:
            assert list(decoded[key]) == list(expected[key])


class TestColumnarRoundTrip:
    def test_write_open_decode(self, tmp_path):
        series = small_series()
        trace = write_series(series, tmp_path / "trace")
        try:
            assert trace.labels() == [b.label for b in series.backups]
            assert trace.num_chunks == sum(len(b) for b in series.backups)
            for view, original in zip(trace.views(), series.backups):
                decoded = view.to_backup()
                assert decoded.fingerprints == original.fingerprints
                assert decoded.sizes == original.sizes
        finally:
            trace.close()

    def test_spilled_vocabulary_writes_identical_trace(self, tmp_path):
        series = small_series()
        in_ram = write_series(series, tmp_path / "ram")
        spilled = write_series(
            series, tmp_path / "spill", spill_threshold=64
        )
        try:
            for name in ("vocab.fp", "ids.u32", "sizes.u32"):
                assert (tmp_path / "ram" / name).read_bytes() == (
                    tmp_path / "spill" / name
                ).read_bytes()
            assert in_ram.num_unique == spilled.num_unique
        finally:
            in_ram.close()
            spilled.close()

    def test_stream_synthesis_is_deterministic(self, tmp_path):
        config = StreamConfig(chunks=4_000, backups=2)
        synthesize_columnar(tmp_path / "one", config, seed=3)
        synthesize_columnar(tmp_path / "two", config, seed=3)
        for name in ("vocab.fp", "ids.u32", "sizes.u32"):
            assert (tmp_path / "one" / name).read_bytes() == (
                tmp_path / "two" / name
            ).read_bytes()


class TestGenerationResume:
    def test_open_refuses_manifestless_directory(self, tmp_path):
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / "ids.u32").write_bytes(b"\x01\x00\x00\x00")
        with pytest.raises(ConfigurationError, match="manifest"):
            ColumnarTrace.open(partial)

    def test_open_refuses_truncated_data(self, tmp_path):
        trace = write_series(small_series(), tmp_path / "trace")
        trace.close()
        ids = tmp_path / "trace" / "ids.u32"
        ids.write_bytes(ids.read_bytes()[:-4])
        with pytest.raises(ConfigurationError, match="truncated"):
            ColumnarTrace.open(tmp_path / "trace")

    def test_ensure_regenerates_partial_and_reuses_complete(self, tmp_path):
        directory = tmp_path / "trace"
        directory.mkdir()
        (directory / "ids.u32").write_bytes(b"junk")  # interrupted run
        calls = []

        def builder(path):
            calls.append(path)
            return write_series(small_series(), path, params={"p": 1})

        trace = ensure_columnar(directory, builder, params={"p": 1})
        trace.close()
        assert len(calls) == 1
        # Matching params: reopened, not regenerated.
        trace = ensure_columnar(directory, builder, params={"p": 1})
        trace.close()
        assert len(calls) == 1
        # Changed params: cleared and rebuilt.
        trace = ensure_columnar(directory, builder, params={"p": 2})
        trace.close()
        assert len(calls) == 2

    def test_interrupted_writer_leaves_no_manifest(self, tmp_path):
        writer = ColumnarTraceWriter(
            tmp_path / "trace", name="t", fingerprint_bytes=4
        )
        with pytest.raises(RuntimeError):
            with writer:
                writer.add_backup(
                    Backup(label="a", fingerprints=[b"abcd"], sizes=[7])
                )
                raise RuntimeError("simulated crash")
        assert not (tmp_path / "trace" / "manifest.json").exists()
        with pytest.raises(ConfigurationError):
            ColumnarTrace.open(tmp_path / "trace")


class TestShardedCountIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_identical_to_references_per_view(
        self, tmp_path, count_mode, jobs
    ):
        config = StreamConfig(chunks=6_000, backups=3)
        trace = ensure_stream_columnar(tmp_path / "trace", config, seed=5)
        try:
            for view in trace.views():
                backup = view.to_backup()
                stats = sharded_count(view, jobs=jobs)
                assert stats.unique_chunks == len(set(backup.fingerprints))
                assert_stats_identical(stats, count_with_neighbors(backup))
                assert_stats_identical(stats, interned_count(backup))
        finally:
            trace.close()

    @pytest.mark.parametrize(
        "fingerprints",
        [
            pytest.param([], id="empty"),
            pytest.param([b"solo-fp-"], id="single-chunk"),
            pytest.param(
                [bytes([i] * 8) for i in range(40)], id="all-unique"
            ),
            pytest.param([b"dup-fp-!"] * 40, id="all-duplicate"),
        ],
    )
    def test_edge_streams(self, tmp_path, count_mode, fingerprints):
        backup = Backup(
            label="edge",
            fingerprints=list(fingerprints),
            sizes=[100 + i for i in range(len(fingerprints))],
        )
        with ColumnarTraceWriter(
            tmp_path / "trace", name="edge", fingerprint_bytes=8
        ) as writer:
            writer.add_backup(backup)
        trace = ColumnarTrace.open(tmp_path / "trace")
        try:
            view = trace.view(0)
            assert view.to_backup().fingerprints == backup.fingerprints
            for jobs in (1, 4):
                stats = sharded_count(view, jobs=jobs)
                assert_stats_identical(stats, count_with_neighbors(backup))
        finally:
            trace.close()

    def test_jobs_must_be_positive(self, tmp_path):
        trace = write_series(small_series(), tmp_path / "trace")
        try:
            with pytest.raises(ConfigurationError):
                sharded_count(trace.view(0), jobs=0)
        finally:
            trace.close()


class TestVocabularyCapacityGuard:
    def test_limit_is_the_pair_packing_width(self):
        assert MAX_VOCABULARY == 1 << PAIR_SHIFT

    def test_oversized_vocabulary_rejected_with_pointer_to_docs(self):
        # 2**PAIR_SHIFT unique ids (0 .. 2**PAIR_SHIFT - 1) still pack.
        check_vocabulary_capacity(MAX_VOCABULARY, "test vocabulary")
        with pytest.raises(ConfigurationError, match="adjacency"):
            check_vocabulary_capacity(MAX_VOCABULARY + 1, "test vocabulary")
        with pytest.raises(ConfigurationError, match="test vocabulary"):
            check_vocabulary_capacity(MAX_VOCABULARY + 7, "test vocabulary")


class TestColumnarAttackEquivalence:
    def test_report_equals_in_ram_evaluator(self, tmp_path, count_mode):
        config = StreamConfig(chunks=6_000, backups=2)
        trace = ensure_stream_columnar(tmp_path / "trace", config, seed=9)
        try:
            series = BackupSeries(
                name="stream-synthetic",
                backups=[view.to_backup() for view in trace.views()],
            )
            encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
                series
            )
            evaluator = AttackEvaluator(encrypted)
            for attack, rate in (
                ("locality", 0.0),
                ("advanced", 0.0),
                ("advanced", 0.01),
            ):
                expected = evaluator.run(
                    _build(attack), auxiliary=-2, target=-1,
                    leakage_rate=rate, seed=0,
                )
                for jobs in (1, 4):
                    report = columnar_attack_report(
                        trace, attack, leakage_rate=rate, jobs=jobs
                    )
                    assert report == expected
        finally:
            trace.close()

    def test_rejects_unknown_attack_and_bad_index(self, tmp_path):
        trace = write_series(small_series(), tmp_path / "trace")
        trace.close()
        with pytest.raises(ConfigurationError, match="columnar attack"):
            columnar_attack_report(tmp_path / "trace", "basic")
        with pytest.raises(ConfigurationError, match="out of range"):
            columnar_attack_report(tmp_path / "trace", target=17)


def _build(name):
    from repro.attacks.advanced import AdvancedLocalityAttack
    from repro.attacks.locality import LocalityAttack

    if name == "locality":
        return LocalityAttack()
    return AdvancedLocalityAttack()


def assert_backend_stats_identical(persisted, reference):
    """Like :func:`assert_stats_identical`, but for backend-resident
    neighbor tables (:class:`NeighborStore` is per-key, not iterable)."""
    assert dict(persisted.frequencies.items()) == dict(
        reference.frequencies.items()
    )
    assert list(persisted.frequencies) == list(reference.frequencies)
    assert dict(persisted.sizes.items()) == dict(reference.sizes.items())
    for side in ("left", "right"):
        store = getattr(persisted, side)
        oracle = getattr(reference, side)
        for fingerprint in reference.frequencies:
            table = store.get(fingerprint) or {}
            expected = oracle.get(fingerprint) or {}
            assert dict(table) == dict(expected)
            assert list(table) == list(expected)


class TestPersistentColumnarCount:
    def test_marker_resume_after_interrupt(self, tmp_path, count_mode):
        trace = write_series(small_series(), tmp_path / "trace")
        try:
            view = trace.view(1)
            state = tmp_path / "state"
            # Simulate an interrupted COUNT: partial store files, no marker.
            state.mkdir()
            (state / "meta.db").write_bytes(b"partial")
            with pytest.raises(ConfigurationError):
                load_chunk_stats(state)
            stats = persist_columnar_stats(view, state, backend="sqlite")
            reference = count_with_neighbors(view.to_backup())
            assert_backend_stats_identical(stats, reference)
            assert (state / "COUNT_STATE").read_text().strip() == "sqlite"
            # Completed state refuses a recount (it would double-merge) …
            with pytest.raises(ConfigurationError, match="already persisted"):
                persist_columnar_stats(view, state, backend="sqlite")
            # … and reopens through the marker, byte-identical.
            assert_backend_stats_identical(load_chunk_stats(state), reference)
        finally:
            trace.close()

    def test_empty_view_rejected(self, tmp_path):
        with ColumnarTraceWriter(
            tmp_path / "trace", name="empty", fingerprint_bytes=4
        ) as writer:
            writer.add_backup(Backup(label="a", fingerprints=[], sizes=[]))
        trace = ColumnarTrace.open(tmp_path / "trace")
        try:
            with pytest.raises(ConfigurationError, match="empty"):
                persist_columnar_stats(trace.view(0), tmp_path / "state")
        finally:
            trace.close()


class TestColumnarCellKind:
    def test_cell_rows_are_deterministic(self, tmp_path):
        from repro.scenarios.cells import ensure_cell_kind, execute_cell
        from repro.scenarios.spec import Cell

        assert ensure_cell_kind("columnar_attack")
        cell = Cell(
            kind="columnar_attack",
            params=(
                ("directory", os.fspath(tmp_path / "trace")),
                ("chunks", 3_000),
                ("backups", 2),
                ("attack", "locality"),
                ("jobs", 2),
            ),
            tags=(("scale", "unit"),),
        )
        first = execute_cell(cell)
        second = execute_cell(cell)  # reopens the completed trace
        assert first == second
        fields = [name for name, _ in first[0]]
        assert fields == [
            "auxiliary",
            "target",
            "inference_rate",
            "precision",
            "correct_pairs",
            "inferred_pairs",
            "unique_ciphertext_chunks",
            "leaked_pairs",
            "iterations",
        ]
