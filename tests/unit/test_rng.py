"""Tests for repro.common.rng: deterministic seed derivation."""

from repro.common.rng import derive_seed, rng_from


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_no_concatenation_ambiguity(self):
        # ("ab",) and ("a", "b") must give different streams.
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    def test_mixed_label_types(self):
        assert derive_seed(42, 1) != derive_seed(42, "1")


class TestRngFrom:
    def test_same_seed_same_stream(self):
        a = rng_from(7, "x")
        b = rng_from(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_independent_streams(self):
        a = rng_from(7, "x")
        b = rng_from(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
