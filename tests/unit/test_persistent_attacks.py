"""Tests for the KVStore-backed attack state (paper's LevelDB path)."""

import pytest

from repro.attacks import AdvancedLocalityAttack, LocalityAttack
from repro.attacks.persistent import (
    NeighborStore,
    PersistentAdvancedAttack,
    PersistentLocalityAttack,
    load_chunk_stats,
    persist_chunk_stats,
)
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.index.kvstore import KVStore


def backup(tokens, sizes=None, label="b"):
    tokens = [t.encode().ljust(4, b"_") for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


class TestNeighborStore:
    def test_roundtrip_preserves_insertion_order(self):
        store = NeighborStore(KVStore(), fingerprint_bytes=4)
        table = {b"bbbb": 3, b"aaaa": 1, b"cccc": 2}
        store.write_table(b"keyk", table)
        loaded = store.get(b"keyk")
        assert loaded == table
        assert list(loaded) == [b"bbbb", b"aaaa", b"cccc"]

    def test_missing_returns_default(self):
        store = NeighborStore(KVStore(), fingerprint_bytes=4)
        assert store.get(b"none") == {}
        assert store.get(b"none", {b"xxxx": 1}) == {b"xxxx": 1}

    def test_invalid_fp_length(self):
        with pytest.raises(ConfigurationError):
            NeighborStore(KVStore(), fingerprint_bytes=0)


class TestPersistChunkStats:
    def test_matches_in_memory_count(self, tmp_path):
        from repro.attacks.frequency import count_with_neighbors

        stream = backup(["a", "b", "a", "c", "b", "a"])
        persisted = persist_chunk_stats(stream, tmp_path / "s")
        in_memory = count_with_neighbors(stream)
        assert persisted.frequencies == in_memory.frequencies
        assert persisted.sizes == in_memory.sizes
        for fingerprint in in_memory.left:
            assert persisted.left.get(fingerprint) == in_memory.left[fingerprint]
        for fingerprint in in_memory.right:
            assert persisted.right.get(fingerprint) == in_memory.right[fingerprint]

    def test_reload_from_disk(self, tmp_path):
        stream = backup(["a", "b", "a"])
        persist_chunk_stats(stream, tmp_path / "s")
        loaded = load_chunk_stats(tmp_path / "s")
        assert loaded.frequencies == {b"a___": 2, b"b___": 1}
        assert loaded.left.get(b"b___") == {b"a___": 1}
        assert loaded.unique_chunks == 2

    def test_reload_preserves_insertion_order(self, tmp_path):
        stream = backup(["z", "m", "a"])
        persist_chunk_stats(stream, tmp_path / "s")
        loaded = load_chunk_stats(tmp_path / "s")
        assert list(loaded.frequencies) == [b"z___", b"m___", b"a___"]

    def test_empty_backup_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            persist_chunk_stats(backup([]), tmp_path / "s")

    def test_load_missing_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_chunk_stats(tmp_path / "nothing")


class TestPersistentAttackEquivalence:
    def test_locality_identical_to_in_memory(self, tmp_path, tiny_encrypted_mle, tiny_fsl_series):
        cipher = tiny_encrypted_mle.backups[-1].ciphertext
        aux = tiny_fsl_series.backups[-2]
        in_memory = LocalityAttack(u=1, v=15, w=50_000).run(cipher, aux)
        persistent = PersistentLocalityAttack(
            tmp_path / "work", u=1, v=15, w=50_000
        ).run(cipher, aux)
        assert persistent.pairs == in_memory.pairs

    def test_advanced_identical_to_in_memory(self, tmp_path, tiny_encrypted_mle, tiny_fsl_series):
        cipher = tiny_encrypted_mle.backups[-1].ciphertext
        aux = tiny_fsl_series.backups[-2]
        in_memory = AdvancedLocalityAttack(u=1, v=15, w=50_000).run(cipher, aux)
        persistent = PersistentAdvancedAttack(
            tmp_path / "work", u=1, v=15, w=50_000
        ).run(cipher, aux)
        assert persistent.pairs == in_memory.pairs

    def test_second_run_reuses_state(self, tmp_path, tiny_encrypted_mle, tiny_fsl_series):
        cipher = tiny_encrypted_mle.backups[-1].ciphertext
        aux = tiny_fsl_series.backups[-2]
        attack = PersistentLocalityAttack(tmp_path / "work", u=1, v=15, w=50_000)
        first = attack.run(cipher, aux)
        second = attack.run(cipher, aux)  # loads persisted stats
        assert first.pairs == second.pairs

    def test_attack_name(self, tmp_path, tiny_encrypted_mle, tiny_fsl_series):
        cipher = tiny_encrypted_mle.backups[-1].ciphertext
        aux = tiny_fsl_series.backups[-2]
        result = PersistentLocalityAttack(
            tmp_path / "w", u=1, v=5, w=100
        ).run(cipher, aux)
        assert result.attack_name == "locality-persistent"

    @pytest.mark.parametrize("backend", ["sqlite", "sharded:2"])
    def test_other_backends_identical_to_in_memory(
        self, backend, tmp_path, tiny_encrypted_mle, tiny_fsl_series
    ):
        cipher = tiny_encrypted_mle.backups[-1].ciphertext
        aux = tiny_fsl_series.backups[-2]
        in_memory = LocalityAttack(u=1, v=15, w=50_000).run(cipher, aux)
        persistent = PersistentLocalityAttack(
            tmp_path / "work", u=1, v=15, w=50_000, backend=backend
        ).run(cipher, aux)
        assert persistent.pairs == in_memory.pairs

    def test_repersist_into_completed_directory_rejected(self, tmp_path):
        stream = backup(["a", "b", "a"])
        persist_chunk_stats(stream, tmp_path / "s")
        with pytest.raises(ConfigurationError):
            persist_chunk_stats(stream, tmp_path / "s")

    def test_interrupted_run_is_wiped_and_recounted(self, tmp_path):
        from repro.attacks.frequency import count_with_neighbors
        from repro.attacks.streaming import CountStores, StreamingCount

        stream = backup(["a", "b", "a", "c", "b", "a"])
        # Simulate an interrupted COUNT: half the stream lands in the
        # stores, no completion marker is written.
        partial = StreamingCount(CountStores.open(tmp_path / "s", "sqlite"))
        partial.ingest(stream.fingerprints[:3], stream.sizes[:3])
        partial.finalize()
        partial.stores.close()

        # Loading must refuse the partial state...
        with pytest.raises(ConfigurationError):
            load_chunk_stats(tmp_path / "s")
        # ...and re-persisting (even on a different backend) must wipe it
        # rather than merge into it.
        stats = persist_chunk_stats(stream, tmp_path / "s", backend="kvstore")
        assert stats.frequencies == count_with_neighbors(stream).frequencies
        reloaded = load_chunk_stats(tmp_path / "s")
        assert reloaded.frequencies == stats.frequencies
