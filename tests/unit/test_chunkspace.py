"""Tests for the chunk identity space and popularity models."""

import random
from collections import Counter

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.chunkspace import (
    ChunkSpace,
    PopularPool,
    SizeModel,
    ZipfSampler,
)


class TestSizeModel:
    def test_fixed(self):
        model = SizeModel(kind="fixed", fixed_size=4096)
        assert model.size_for(0.1) == 4096
        assert model.size_for(0.9) == 4096

    def test_variable_bounds(self):
        model = SizeModel(min_size=2048, avg_size=8192, max_size=65536)
        for u in (0.0, 0.25, 0.5, 0.75, 0.999999):
            size = model.size_for(u)
            assert 2048 <= size <= 65536

    def test_quantisation(self):
        model = SizeModel(size_quantum=512)
        for u in (0.1, 0.4, 0.8):
            assert model.size_for(u) % 512 == 0

    def test_mean_near_average(self):
        model = SizeModel(min_size=2048, avg_size=8192, max_size=65536, size_quantum=1)
        rng = random.Random(0)
        sizes = [model.size_for(rng.random()) for _ in range(20_000)]
        mean = sum(sizes) / len(sizes)
        assert 0.8 * 8192 < mean < 1.2 * 8192

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            SizeModel(kind="weird")
        with pytest.raises(ConfigurationError):
            SizeModel(min_size=10_000, avg_size=8192, max_size=65536)
        with pytest.raises(ConfigurationError):
            SizeModel(size_quantum=0)


class TestChunkSpace:
    def test_allocate_monotonic(self):
        space = ChunkSpace("test")
        ids = space.allocate_many(10)
        assert ids == list(range(10))
        assert space.allocated == 10

    def test_fingerprint_stable_and_distinct(self):
        space = ChunkSpace("test", fingerprint_bytes=6)
        assert space.fingerprint(1) == space.fingerprint(1)
        assert space.fingerprint(1) != space.fingerprint(2)
        assert len(space.fingerprint(1)) == 6

    def test_namespace_separation(self):
        a = ChunkSpace("ns-a")
        b = ChunkSpace("ns-b")
        assert a.fingerprint(1) != b.fingerprint(1)

    def test_size_stable(self):
        space = ChunkSpace("test")
        assert space.size(5) == space.size(5)

    def test_invalid_fingerprint_bytes(self):
        with pytest.raises(ConfigurationError):
            ChunkSpace("test", fingerprint_bytes=2)


class TestZipfSampler:
    def test_rank_zero_most_likely(self):
        sampler = ZipfSampler(count=50, exponent=1.2)
        rng = random.Random(1)
        counts = Counter(sampler.draw(rng) for _ in range(20_000))
        assert counts[0] > counts[10] > counts.get(45, 0)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(count=10, exponent=1.0)
        assert abs(sum(sampler.probabilities) - 1.0) < 1e-9

    def test_single_rank(self):
        sampler = ZipfSampler(count=1, exponent=1.0)
        assert sampler.draw(random.Random(0)) == 0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(count=0, exponent=1.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(count=5, exponent=0.0)


class TestPopularPool:
    def test_build_singleton_top(self):
        space = ChunkSpace("pool")
        pool = PopularPool.build(
            space, random.Random(2), num_runs=20, singleton_top=5
        )
        assert all(len(run) == 1 for run in pool.runs[:5])

    def test_draw_run_returns_prefixes(self):
        space = ChunkSpace("pool")
        pool = PopularPool.build(
            space, random.Random(3), num_runs=10, min_run=4, max_run=6,
            singleton_top=0,
        )
        rng = random.Random(4)
        for _ in range(50):
            run = pool.draw_run(rng)
            full = next(r for r in pool.runs if r[0] == run[0])
            assert run == full[: len(run)]

    def test_zipf_head_dominates(self):
        space = ChunkSpace("pool")
        pool = PopularPool.build(space, random.Random(5), num_runs=30)
        rng = random.Random(6)
        counts = Counter(tuple(pool.draw_run(rng))[0] for _ in range(5000))
        top_chunk = pool.runs[0][0]
        assert counts[top_chunk] == max(counts.values())

    def test_expected_run_length_positive(self):
        space = ChunkSpace("pool")
        pool = PopularPool.build(space, random.Random(7), num_runs=10)
        assert pool.expected_run_length >= 1.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            PopularPool(runs=[])
        with pytest.raises(ConfigurationError):
            PopularPool(runs=[[]])
