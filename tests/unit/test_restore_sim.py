"""Tests for the restore-locality simulation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.storage.ddfs import DDFSEngine
from repro.storage.restore_sim import simulate_restore


def backup(tokens, label="b"):
    return Backup(
        label=label,
        fingerprints=[t.encode() for t in tokens],
        sizes=[4096] * len(tokens),
    )


def make_engine(container_chunks=4):
    return DDFSEngine(
        cache_budget_bytes=64 * 1024,
        bloom_capacity=10_000,
        container_size=container_chunks * 4096,
    )


class TestSimulateRestore:
    def test_sequential_layout_reads_each_container_once(self):
        engine = make_engine(container_chunks=4)
        stream = backup([f"c{i}" for i in range(16)])
        engine.process_backup(stream)
        report = simulate_restore(engine, stream, cache_containers=1)
        assert report.container_reads == 4
        assert report.containers_in_layout == 4
        assert report.chunks_read == 16

    def test_interleaved_restore_order_thrashes_small_cache(self):
        engine = make_engine(container_chunks=4)
        tokens = [f"c{i}" for i in range(8)]  # containers: 0-3, 4-7
        engine.process_backup(backup(tokens))
        # Alternate between the two containers chunk by chunk.
        interleaved = backup(
            [tokens[i] for pair in zip(range(4), range(4, 8)) for i in pair]
        )
        thrashing = simulate_restore(engine, interleaved, cache_containers=1)
        cached = simulate_restore(engine, interleaved, cache_containers=2)
        assert thrashing.container_reads == 8  # reload on every switch
        assert cached.container_reads == 2

    def test_duplicate_chunks_do_not_reread(self):
        engine = make_engine(container_chunks=4)
        engine.process_backup(backup(["a", "b", "a", "b", "a"]))
        report = simulate_restore(
            engine, backup(["a", "b", "a", "b", "a"]), cache_containers=2
        )
        assert report.container_reads == 1

    def test_unstored_chunk_rejected(self):
        engine = make_engine()
        engine.process_backup(backup(["a"]))
        with pytest.raises(ConfigurationError):
            simulate_restore(engine, backup(["ghost"]))

    def test_invalid_cache_size(self):
        engine = make_engine()
        engine.process_backup(backup(["a"]))
        with pytest.raises(ConfigurationError):
            simulate_restore(engine, backup(["a"]), cache_containers=0)

    def test_reads_per_chunk_metric(self):
        engine = make_engine(container_chunks=4)
        stream = backup([f"c{i}" for i in range(8)])
        engine.process_backup(stream)
        report = simulate_restore(engine, stream)
        assert report.reads_per_mib_factor == pytest.approx(2 / 8)


class TestRestoreOrderPlumbing:
    def test_scrambled_pipeline_exposes_logical_order(
        self, tiny_fsl_series, tiny_segmentation
    ):
        from repro.defenses.pipeline import DefensePipeline, DefenseScheme

        combined = DefensePipeline(
            DefenseScheme.COMBINED, segmentation=tiny_segmentation, seed=5
        ).encrypt_backup(tiny_fsl_series.backups[0], 0)
        logical = combined.logical_ciphertext()
        # Same multiset, different order than the upload stream.
        assert sorted(logical.fingerprints) == sorted(
            combined.ciphertext.fingerprints
        )
        assert logical.fingerprints != combined.ciphertext.fingerprints

    def test_mle_pipeline_logical_equals_upload(self, tiny_fsl_series):
        from repro.defenses.pipeline import DefensePipeline, DefenseScheme

        mle = DefensePipeline(DefenseScheme.MLE).encrypt_backup(
            tiny_fsl_series.backups[0], 0
        )
        assert mle.logical_ciphertext() is mle.ciphertext

    def test_logical_order_matches_plaintext_order(
        self, tiny_fsl_series, tiny_segmentation
    ):
        """The i-th logical ciphertext chunk must be the encryption of the
        i-th plaintext chunk — that is what file recipes record."""
        from repro.defenses.pipeline import DefensePipeline, DefenseScheme

        source = tiny_fsl_series.backups[0]
        combined = DefensePipeline(
            DefenseScheme.COMBINED, segmentation=tiny_segmentation, seed=5
        ).encrypt_backup(source, 0)
        logical = combined.logical_ciphertext()
        for cipher_fp, plain_fp in zip(
            logical.fingerprints, source.fingerprints
        ):
            assert combined.truth[cipher_fp] == plain_fp
