"""Tests for the chunking substrate: fixed, Rabin, gear, fingerprints."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    Chunk,
    ChunkerSpec,
    Fingerprinter,
    FixedSizeChunker,
    GearChunker,
    RabinChunker,
    RabinRolling,
)
from repro.chunking.base import reassemble
from repro.common.errors import ConfigurationError

SPEC = ChunkerSpec(min_size=64, avg_size=256, max_size=1024)


def chunkers():
    return [
        FixedSizeChunker(block_size=256),
        RabinChunker(SPEC),
        GearChunker(SPEC),
    ]


class TestChunkerSpec:
    def test_mask(self):
        assert ChunkerSpec(64, 256, 1024).mask == 255

    @pytest.mark.parametrize(
        "args", [(0, 256, 1024), (64, 200, 1024), (512, 256, 1024), (64, 256, 128)]
    )
    def test_invalid_specs(self, args):
        with pytest.raises(ConfigurationError):
            ChunkerSpec(*args)


class TestChunkBasics:
    def test_chunk_size(self):
        chunk = Chunk(offset=3, data=b"abcd")
        assert chunk.size == 4
        assert len(chunk) == 4

    def test_empty_input_gives_no_chunks(self):
        for chunker in chunkers():
            assert chunker.split(b"") == []

    def test_single_byte(self):
        for chunker in chunkers():
            chunks = chunker.split(b"x")
            assert reassemble(chunks) == b"x"


class TestReassembly:
    @given(st.binary(min_size=0, max_size=20_000))
    @settings(max_examples=25, deadline=None)
    def test_reassembly_invariant(self, data):
        for chunker in chunkers():
            chunks = chunker.split(data)
            assert reassemble(chunks) == data
            # Offsets must be consistent with concatenation order.
            position = 0
            for chunk in chunks:
                assert chunk.offset == position
                position += chunk.size

    def test_cut_points_end_with_length(self):
        data = random.Random(0).randbytes(5000)
        for chunker in chunkers():
            cuts = chunker.cut_points(data)
            assert cuts[-1] == len(data)
            assert cuts == sorted(cuts)
            assert len(set(cuts)) == len(cuts)


class TestSizeBounds:
    def test_content_defined_bounds(self):
        data = random.Random(1).randbytes(100_000)
        for chunker in (RabinChunker(SPEC), GearChunker(SPEC)):
            chunks = chunker.split(data)
            sizes = [c.size for c in chunks]
            # All chunks except the final one respect min/max.
            for size in sizes[:-1]:
                assert SPEC.min_size <= size <= SPEC.max_size
            assert sizes[-1] <= SPEC.max_size

    def test_average_size_in_expected_band(self):
        data = random.Random(2).randbytes(300_000)
        for chunker in (RabinChunker(SPEC), GearChunker(SPEC)):
            sizes = [c.size for c in chunker.split(data)]
            mean = sum(sizes) / len(sizes)
            # Content-defined chunking with min-size skipping lands around
            # min + avg; allow a generous band.
            assert SPEC.min_size < mean < SPEC.max_size


class TestFixedChunker:
    def test_exact_blocks(self):
        chunker = FixedSizeChunker(block_size=100)
        chunks = chunker.split(b"a" * 250)
        assert [c.size for c in chunks] == [100, 100, 50]

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            FixedSizeChunker(block_size=0)


class TestShiftRobustness:
    def test_insertion_preserves_most_chunks(self):
        data = random.Random(3).randbytes(60_000)
        shifted = data[:30_000] + b"INSERTED" + data[30_000:]
        for chunker in (RabinChunker(SPEC), GearChunker(SPEC)):
            before = {c.data for c in chunker.split(data)}
            after = {c.data for c in chunker.split(shifted)}
            shared = len(before & after) / len(before)
            assert shared > 0.8, f"{chunker}: only {shared:.0%} chunks survive"

    def test_fixed_size_chunking_is_not_shift_robust(self):
        # The contrast that motivates content-defined chunking.
        data = random.Random(4).randbytes(60_000)
        shifted = b"X" + data
        chunker = FixedSizeChunker(4096)
        before = {c.data for c in chunker.split(data)}
        after = {c.data for c in chunker.split(shifted)}
        assert len(before & after) / len(before) < 0.1


class TestRabinRolling:
    def test_rolling_matches_naive_window_fingerprint(self):
        rolling = RabinRolling(window=16)
        data = random.Random(5).randbytes(200)
        fingerprint = 0
        for index, byte in enumerate(data):
            if index < rolling.window:
                fingerprint = rolling.append(fingerprint, byte)
            else:
                fingerprint = rolling.slide(
                    fingerprint, byte, data[index - rolling.window]
                )
            if index >= rolling.window - 1:
                window = data[index - rolling.window + 1 : index + 1]
                assert fingerprint == rolling.fingerprint(window), index

    def test_degree_bound(self):
        rolling = RabinRolling()
        rng = random.Random(6)
        fingerprint = 0
        for _ in range(1000):
            fingerprint = rolling.append(fingerprint, rng.randrange(256))
            assert fingerprint < (1 << rolling.degree)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            RabinRolling(window=0)


class TestRabinChunkerZeros:
    def test_zero_runs_do_not_cut_everywhere(self):
        # All-zero data has fingerprint 0; the magic value must avoid
        # degenerate per-byte cuts.
        chunker = RabinChunker(SPEC)
        chunks = chunker.split(b"\x00" * 50_000)
        sizes = [c.size for c in chunks]
        assert all(s >= SPEC.min_size for s in sizes[:-1])
        # Zero data has no boundaries, so chunks should hit max_size.
        assert sizes[0] == SPEC.max_size


class TestFingerprinter:
    def test_deterministic(self):
        fp = Fingerprinter("sha256")
        assert fp(b"data") == fp(b"data")

    def test_distinct_content_distinct_fingerprints(self):
        fp = Fingerprinter("sha256")
        assert fp(b"a") != fp(b"b")

    def test_truncation(self):
        fp = Fingerprinter("sha1", truncate_bytes=6)
        assert len(fp(b"data")) == 6
        assert fp.digest_size == 6

    def test_hex(self):
        fp = Fingerprinter("sha256", truncate_bytes=4)
        assert fp.hex(b"data") == fp(b"data").hex()

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            Fingerprinter("sha512")

    def test_bad_truncation(self):
        with pytest.raises(ConfigurationError):
            Fingerprinter("sha1", truncate_bytes=0)
        with pytest.raises(ConfigurationError):
            Fingerprinter("sha1", truncate_bytes=21)

    @given(st.binary(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_truncated_is_prefix_of_full(self, data):
        full = Fingerprinter("sha256")
        short = Fingerprinter("sha256", truncate_bytes=8)
        assert full(data)[:8] == short(data)
