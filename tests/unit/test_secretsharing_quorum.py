"""Tests for Shamir secret sharing and the quorum key manager."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, IntegrityError
from repro.crypto.keymanager import RateLimiter
from repro.crypto.quorum import KeyManagerReplica, QuorumKeyManager
from repro.crypto.secretsharing import (
    Share,
    combine_shares,
    gf_div,
    gf_mul,
    split_secret,
)

SECRET = b"attack at dawn \xff\x00"


class TestGF256:
    def test_multiplicative_identity(self):
        for value in (1, 7, 130, 255):
            assert gf_mul(value, 1) == value

    def test_zero_annihilates(self):
        assert gf_mul(0, 123) == 0
        assert gf_mul(55, 0) == 0

    def test_commutativity(self):
        rng = random.Random(0)
        for _ in range(100):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_div_inverts_mul(self):
        rng = random.Random(1)
        for _ in range(100):
            a = rng.randrange(256)
            b = rng.randrange(1, 256)
            assert gf_div(gf_mul(a, b), b) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_aes_field_sanity(self):
        # Known AES field product: 0x53 * 0xCA = 0x01.
        assert gf_mul(0x53, 0xCA) == 0x01


class TestShamir:
    @given(
        secret=st.binary(min_size=1, max_size=48),
        threshold=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_combine_roundtrip(self, secret, threshold, extra):
        shares = split_secret(
            secret, threshold, threshold + extra, rng=random.Random(7)
        )
        rng = random.Random(9)
        subset = rng.sample(shares, threshold)
        assert combine_shares(subset) == secret

    def test_any_k_subset_works(self):
        shares = split_secret(SECRET, 3, 5, rng=random.Random(2))
        import itertools

        for subset in itertools.combinations(shares, 3):
            assert combine_shares(list(subset)) == SECRET

    def test_fewer_than_threshold_gives_garbage(self):
        shares = split_secret(SECRET, 3, 5, rng=random.Random(3))
        # Interpolating with too few shares yields the wrong value (with
        # overwhelming probability).
        assert combine_shares(shares[:2]) != SECRET

    def test_share_independence_of_order(self):
        shares = split_secret(SECRET, 2, 4, rng=random.Random(4))
        assert combine_shares([shares[3], shares[0]]) == SECRET
        assert combine_shares([shares[0], shares[3]]) == SECRET

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            split_secret(SECRET, 0, 3)
        with pytest.raises(ConfigurationError):
            split_secret(SECRET, 4, 3)
        with pytest.raises(ConfigurationError):
            split_secret(b"", 1, 1)

    def test_duplicate_indices_rejected(self):
        shares = split_secret(SECRET, 2, 3, rng=random.Random(5))
        with pytest.raises(IntegrityError):
            combine_shares([shares[0], shares[0]])

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(IntegrityError):
            combine_shares([Share(1, b"ab"), Share(2, b"abc")])


MASTER = b"m" * 32


class TestQuorumKeyManager:
    def make_quorum(self, threshold=2, replicas=4, limiter_factory=None):
        return QuorumKeyManager.create(
            MASTER, threshold, replicas, limiter_factory
        )

    def test_key_is_deterministic(self):
        quorum = self.make_quorum()
        assert quorum.derive_key(b"fp") == quorum.derive_key(b"fp")

    def test_distinct_fingerprints_distinct_keys(self):
        quorum = self.make_quorum()
        assert quorum.derive_key(b"fp1") != quorum.derive_key(b"fp2")

    def test_matches_single_manager_semantics(self):
        # The quorum reconstructs exactly HMAC(master, 'mle-key:' || fp) —
        # the same key a single KeyManager would derive.
        from repro.crypto.keymanager import KeyManager

        quorum = self.make_quorum()
        single = KeyManager(MASTER)
        assert quorum.derive_key(b"fp") == single.derive_key(b"fp")

    def test_tolerates_replica_failures(self):
        quorum = self.make_quorum(threshold=2, replicas=4)
        key_before = quorum.derive_key(b"fp")
        quorum.replicas[0].available = False
        quorum.replicas[2].available = False
        assert quorum.live_replicas() == 2
        assert quorum.derive_key(b"fp") == key_before

    def test_fails_below_threshold(self):
        quorum = self.make_quorum(threshold=3, replicas=4)
        for replica in quorum.replicas[:2]:
            replica.available = False
        with pytest.raises(ConfigurationError):
            quorum.derive_key(b"fp")

    def test_rate_limited_replicas_count_as_failures(self):
        quorum = self.make_quorum(
            threshold=2,
            replicas=3,
            limiter_factory=lambda: RateLimiter(rate=0.001, burst=1.0),
        )
        quorum.derive_key(b"fp1")  # consumes replicas 1 and 2's budgets
        # Next query: replicas 1-2 are exhausted, only replica 3 has one
        # token left -> below threshold.
        with pytest.raises(ConfigurationError):
            quorum.derive_key(b"fp2")

    def test_replica_validation(self):
        with pytest.raises(ConfigurationError):
            KeyManagerReplica(b"short", 1, 1, 1)
        with pytest.raises(ConfigurationError):
            KeyManagerReplica(MASTER, 5, 2, 4)
        with pytest.raises(ConfigurationError):
            QuorumKeyManager([])

    def test_mixed_thresholds_rejected(self):
        a = KeyManagerReplica(MASTER, 1, 2, 3)
        b = KeyManagerReplica(MASTER, 2, 3, 3)
        with pytest.raises(ConfigurationError):
            QuorumKeyManager([a, b])
