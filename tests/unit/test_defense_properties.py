"""Property tests for the tunable defense families (frequency-obfuscated
encryption and its scheme-spec plumbing).

Three families of guarantees, each checked across the knob sweep rather
than at a single point:

* **restore** — every scheme's ciphertext stream maps back to the exact
  plaintext fingerprint stream through the truth map;
* **cost monotonicity** — stored unique bytes are non-decreasing in the
  obfuscation knob ``t`` (dedup degrades gracefully, never abruptly);
* **leakage monotonicity** — the frequency-KLD flatness metric is
  non-increasing in ``t``.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.defenses.obfuscate import (
    DEFAULT_VARIANTS,
    FrequencyObfuscator,
    frequency_kld,
    parse_scheme,
    scheme_spec,
)
from repro.defenses.pipeline import DefensePipeline, DefenseScheme

KNOBS = (1, 2, 4, 8)
SCHEMES = ("mle", "minhash", "scramble", "combined", "obfuscate:2")


def backup(tokens, sizes=None, label="b"):
    tokens = [token.encode() for token in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


def _unique_stored_bytes(encrypted) -> int:
    seen = {}
    for item in encrypted.backups:
        for fp, size in zip(
            item.ciphertext.fingerprints, item.ciphertext.sizes
        ):
            seen.setdefault(fp, size)
    return sum(seen.values())


class TestParseScheme:
    def test_plain_names_round_trip(self):
        for scheme in DefenseScheme:
            parsed, variants = parse_scheme(scheme.value)
            assert parsed is scheme
            expected = (
                DEFAULT_VARIANTS if scheme is DefenseScheme.OBFUSCATE else 1
            )
            assert variants == expected

    def test_parameterized_spec(self):
        assert parse_scheme("obfuscate:8") == (DefenseScheme.OBFUSCATE, 8)

    def test_enum_passthrough(self):
        assert parse_scheme(DefenseScheme.MLE) == (DefenseScheme.MLE, 1)

    @pytest.mark.parametrize(
        "spec",
        ["nope", "obfuscate:x", "obfuscate:0", "obfuscate:-1", "mle:2"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_scheme(spec)

    def test_canonical_spelling(self):
        assert scheme_spec(DefenseScheme.OBFUSCATE, 4) == "obfuscate:4"
        assert scheme_spec(DefenseScheme.MLE) == "mle"

    def test_spec_parameter_wins_over_keyword(self):
        pipeline = DefensePipeline("obfuscate:8", obfuscate_variants=2)
        assert pipeline.obfuscate_variants == 8

    def test_keyword_applies_to_bare_name(self):
        pipeline = DefensePipeline("obfuscate", obfuscate_variants=5)
        assert pipeline.obfuscate_variants == 5


class TestObfuscatorBalance:
    def test_round_robin_covers_all_variants(self):
        obfuscator = FrequencyObfuscator(variants=4, seed=3)
        fp = b"chunk"
        assigned = {obfuscator.assign(fp, k) for k in range(4)}
        assert assigned == set(range(4))

    def test_split_is_flattest_possible(self):
        # f occurrences over t variants land as ceil(f/t) / floor(f/t).
        obfuscator = FrequencyObfuscator(variants=3, seed=0)
        fp = b"chunk"
        counts = {}
        for k in range(10):
            variant = obfuscator.assign(fp, k)
            counts[variant] = counts.get(variant, 0) + 1
        assert sorted(counts.values()) == [3, 3, 4]

    def test_variant_fingerprints_are_seed_independent(self):
        a = FrequencyObfuscator(variants=4, seed=1)
        b = FrequencyObfuscator(variants=4, seed=2)
        assert a.variant_fingerprint(b"x", 2, 16) == b.variant_fingerprint(
            b"x", 2, 16
        )
        # ... while the balance phase is keyed.
        phases_differ = any(
            a.offset(f"fp{i}".encode()) != b.offset(f"fp{i}".encode())
            for i in range(32)
        )
        assert phases_differ

    def test_variant_count_validated(self):
        with pytest.raises(ConfigurationError):
            FrequencyObfuscator(variants=0)


class TestRestoreRoundTrip:
    """The exact-map restore guarantee: ciphertext -> truth -> plaintext
    reproduces the logical stream byte-for-byte, for every scheme."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_truth_restores_logical_stream(
        self, scheme, tiny_fsl_series, tiny_segmentation
    ):
        pipeline = DefensePipeline(
            scheme, segmentation=tiny_segmentation, seed=5
        )
        encrypted = pipeline.encrypt_series(tiny_fsl_series)
        for plain, cipher in zip(tiny_fsl_series.backups, encrypted.backups):
            logical = cipher.logical_ciphertext()
            restored = [cipher.truth[fp] for fp in logical.fingerprints]
            assert restored == plain.fingerprints

    @pytest.mark.parametrize("knob", KNOBS)
    def test_obfuscated_restore_at_every_knob(
        self, knob, tiny_fsl_series, tiny_segmentation
    ):
        pipeline = DefensePipeline(
            f"obfuscate:{knob}", segmentation=tiny_segmentation, seed=5
        )
        encrypted = pipeline.encrypt_series(tiny_fsl_series)
        for plain, cipher in zip(tiny_fsl_series.backups, encrypted.backups):
            restored = [
                cipher.truth[fp] for fp in cipher.ciphertext.fingerprints
            ]
            assert restored == plain.fingerprints

    def test_identical_uploads_produce_identical_ciphertext(self):
        # Encryption is a pure function of the stream (occurrences reset
        # per backup), so cross-user dedup survives at the variant level.
        pipeline = DefensePipeline("obfuscate:4", seed=9)
        stream = ["a", "b", "a", "a", "c", "b"]
        first = pipeline.encrypt_backup(backup(stream, label="u1"))
        second = pipeline.encrypt_backup(backup(stream, label="u2"))
        assert (
            first.ciphertext.fingerprints == second.ciphertext.fingerprints
        )


class TestKnobMonotonicity:
    @pytest.fixture(scope="class")
    def sweep(self, tiny_fsl_series, tiny_segmentation):
        encrypted = {}
        for knob in KNOBS:
            pipeline = DefensePipeline(
                f"obfuscate:{knob}",
                segmentation=tiny_segmentation,
                seed=5,
            )
            encrypted[knob] = pipeline.encrypt_series(tiny_fsl_series)
        return encrypted

    def test_stored_bytes_non_decreasing(self, sweep):
        stored = [_unique_stored_bytes(sweep[knob]) for knob in KNOBS]
        assert stored == sorted(stored)
        # And the sweep actually moves: more variants, more residue.
        assert stored[-1] > stored[0]

    def test_kld_non_increasing(self, sweep):
        klds = []
        for knob in KNOBS:
            fingerprints = []
            for item in sweep[knob].backups:
                fingerprints.extend(item.ciphertext.fingerprints)
            klds.append(frequency_kld(fingerprints))
        assert klds == sorted(klds, reverse=True)
        assert klds[-1] < klds[0]

    def test_knob_one_is_deterministic_one_to_one(self, sweep):
        for item in sweep[1].backups:
            # t=1: one ciphertext per plaintext chunk, like MLE.
            assert len(set(item.truth.values())) == len(item.truth)


class TestFrequencyKLD:
    def test_empty_and_singleton_are_flat(self):
        assert frequency_kld([]) == 0.0
        assert frequency_kld([b"a", b"a"]) == 0.0

    def test_uniform_is_zero(self):
        assert frequency_kld([b"a", b"b", b"c", b"a", b"b", b"c"]) == (
            pytest.approx(0.0)
        )

    def test_skew_increases_divergence(self):
        flat = frequency_kld([b"a", b"b", b"c", b"d"])
        skewed = frequency_kld([b"a"] * 97 + [b"b", b"c", b"d"])
        assert skewed > flat


def _colliding_tokens(pipeline: DefensePipeline) -> list[str]:
    """Two tokens whose truncated ciphertext fingerprints collide."""
    seen: dict[bytes, str] = {}
    for index in range(10_000):
        token = f"t{index}"
        if pipeline.scheme is DefenseScheme.OBFUSCATE:
            cipher_fp = FrequencyObfuscator.variant_fingerprint(
                token.encode(), 0, 1
            )
        else:
            cipher_fp = pipeline._mle_fingerprint(token.encode(), 1)
        if cipher_fp in seen:
            return [seen[cipher_fp], token]
        seen[cipher_fp] = token
    raise AssertionError("no 1-byte collision in 10k tokens")


class TestUnifiedCollisionCheck:
    """All three encryption paths funnel through one truth-map collision
    check (``DefensePipeline._record_truth``); a regression on any path
    must fail the same way."""

    @pytest.mark.parametrize(
        "scheme", ["mle", "scramble", "obfuscate:1"]
    )
    def test_every_path_raises_on_collision(self, scheme, tiny_segmentation):
        pipeline = DefensePipeline(
            scheme, segmentation=tiny_segmentation, fingerprint_bytes=1
        )
        tokens = _colliding_tokens(pipeline)
        with pytest.raises(ConfigurationError, match="collision"):
            pipeline.encrypt_backup(backup(tokens))

    def test_obfuscated_repeats_are_not_collisions(self):
        pipeline = DefensePipeline("obfuscate:2", fingerprint_bytes=8)
        encrypted = pipeline.encrypt_backup(backup(["a", "a", "a", "b"]))
        # Three occurrences over two variants: two ciphertexts for "a".
        assert len(encrypted.truth) == 3
