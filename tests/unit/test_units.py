"""Tests for repro.common.units."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GiB, KiB, MiB, format_size, parse_size


class TestParseSize:
    def test_plain_integer_passthrough(self):
        assert parse_size(12345) == 12345

    def test_bare_number_string(self):
        assert parse_size("4096") == 4096

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4KB", 4 * KiB),
            ("4 KiB", 4 * KiB),
            ("1MB", MiB),
            ("2 MiB", 2 * MiB),
            ("1g", GiB),
            ("0.5 GB", GiB // 2),
            ("512b", 512),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_case_insensitive(self):
        assert parse_size("4kb") == parse_size("4KB") == parse_size("4Kb")

    @pytest.mark.parametrize("bad", ["", "abc", "4XB", "MB4", "-4KB"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ConfigurationError):
            parse_size(bad)


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512 B"

    def test_kib(self):
        assert format_size(4 * KiB) == "4.0 KiB"

    def test_mib(self):
        assert format_size(int(2.5 * MiB)) == "2.5 MiB"

    def test_negative(self):
        assert format_size(-MiB) == "-1.0 MiB"

    def test_round_trip_order_of_magnitude(self):
        # format then parse lands within 10% for sizes above 1 KiB
        for value in (3 * KiB, 7 * MiB, 2 * GiB):
            text = format_size(value).replace(" ", "")
            assert abs(parse_size(text) - value) / value < 0.1
