"""Fastpath ≡ reference property tests for the hot-path layer.

Every optimized loop must be byte-identical to its reference oracle:

* chunker ``cut_points`` (vectorized and pure-Python skip-ahead) vs
  ``cut_points_reference`` — random / all-zero / repeated data, forced
  ``max_size`` cuts, inputs shorter than ``min_size``;
* interned COUNT (array-backed and Counter-backed) vs
  ``count_with_neighbors`` vs ``StreamingCount`` on the same streams,
  including table iteration order (the tie-break-sensitive part);
* the engine's batched unique-ingest vs the per-chunk S1–S4 path.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.frequency import count_frequencies, count_with_neighbors
from repro.attacks.interning import (
    ChunkVocabulary,
    InternedCount,
    interned_count,
)
from repro.attacks.streaming import StreamingCount
from repro.chunking import ChunkerSpec, GearChunker, RabinChunker
from repro.chunking import fastscan
from repro.common import accel
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup

SPEC = ChunkerSpec(min_size=64, avg_size=256, max_size=1024)


def chunker_pairs():
    return [RabinChunker(SPEC), GearChunker(SPEC)]


@pytest.fixture(params=["accelerated", "fallback"])
def scan_mode(request, monkeypatch):
    """Run chunker equivalence under both scan implementations."""
    if request.param == "fallback":
        monkeypatch.setattr(fastscan, "numpy", None)
    elif fastscan.numpy is None:
        pytest.skip("numpy unavailable; accelerated path cannot run")
    return request.param


@pytest.fixture(params=["accelerated", "fallback"])
def count_mode(request, monkeypatch):
    """Run COUNT equivalence under both ingest implementations."""
    if request.param == "fallback":
        monkeypatch.setattr(accel, "numpy", None)
    elif accel.numpy is None:
        pytest.skip("numpy unavailable; accelerated path cannot run")
    return request.param


class TestChunkerFastpathEquivalence:
    @given(st.binary(min_size=0, max_size=30_000))
    @settings(max_examples=30, deadline=None)
    def test_random_data(self, data):
        for chunker in chunker_pairs():
            assert chunker.cut_points(data) == chunker.cut_points_reference(data)

    def test_scan_modes_agree(self, scan_mode):
        data = random.Random(0).randbytes(50_000)
        for chunker in chunker_pairs():
            assert chunker.cut_points(data) == chunker.cut_points_reference(data)

    def test_all_zero_data_forces_max_size_cuts(self, scan_mode):
        data = b"\x00" * 20_000
        for chunker in chunker_pairs():
            cuts = chunker.cut_points(data)
            assert cuts == chunker.cut_points_reference(data)
            # Zero data has no content boundaries under either algorithm's
            # magic convention: every full chunk is a forced max_size cut.
            assert cuts[0] == SPEC.max_size

    def test_repeated_pattern_data(self, scan_mode):
        for pattern in (b"ab", b"\xff\x00\x17", b"x" * 7):
            data = pattern * (30_000 // len(pattern))
            for chunker in chunker_pairs():
                assert (
                    chunker.cut_points(data)
                    == chunker.cut_points_reference(data)
                )

    def test_inputs_shorter_than_min_size(self, scan_mode):
        rng = random.Random(1)
        for length in (0, 1, SPEC.min_size - 1, SPEC.min_size, SPEC.min_size + 1):
            data = rng.randbytes(length)
            for chunker in chunker_pairs():
                got = chunker.cut_points(data)
                assert got == chunker.cut_points_reference(data)
                if length:
                    assert got[-1] == length
                else:
                    assert got == []

    def test_degenerate_specs_fall_back_correctly(self, scan_mode):
        rng = random.Random(2)
        data = rng.randbytes(5_000)
        for spec in (
            ChunkerSpec(16, 16, 16),
            ChunkerSpec(1, 256, 300),
            ChunkerSpec(48, 64, 100),
        ):
            for chunker in (RabinChunker(spec), GearChunker(spec)):
                assert (
                    chunker.cut_points(data)
                    == chunker.cut_points_reference(data)
                )

    def test_nondefault_rabin_window_and_magic(self, scan_mode):
        rng = random.Random(3)
        data = rng.randbytes(40_000)
        for window in (17, 48):
            chunker = RabinChunker(SPEC, window=window, magic=0x55)
            assert chunker.cut_points(data) == chunker.cut_points_reference(data)

    def test_reference_tail_never_duplicates_final_cut(self):
        # The cleaned-up tail handling: the final cut is len(data) exactly
        # once, whether or not a content/forced cut landed there.
        chunker = RabinChunker(SPEC)
        data = random.Random(4).randbytes(SPEC.max_size)
        cuts = chunker.cut_points_reference(data)
        assert cuts[-1] == len(data)
        assert sorted(set(cuts)) == cuts


def token_streams():
    tokens = [bytes([value]) * 8 for value in range(12)]
    return st.lists(st.sampled_from(tokens), min_size=0, max_size=300)


class TestCountEquivalence:
    @given(token_streams())
    @settings(max_examples=40, deadline=None)
    def test_interned_equals_reference(self, fingerprints):
        sizes = [100 + (index % 7) for index in range(len(fingerprints))]
        backup = Backup(label="p", fingerprints=fingerprints, sizes=sizes)
        reference = count_with_neighbors(backup)
        fast = interned_count(backup)
        assert fast.frequencies == reference.frequencies
        assert list(fast.frequencies) == list(reference.frequencies)
        assert fast.sizes == reference.sizes
        assert list(fast.sizes) == list(reference.sizes)
        for view, oracle in (
            (fast.left, reference.left),
            (fast.right, reference.right),
        ):
            decoded = dict(view.items())
            assert decoded == oracle
            assert list(decoded) == list(oracle)
            for key, table in decoded.items():
                assert list(table) == list(oracle[key])
                assert view.get(key) == table
                assert key in view
            assert len(view) == len(oracle)
            assert view.get(b"absent" * 3, None) is None

    def test_both_count_modes_agree(self, count_mode):
        rng = random.Random(5)
        tokens = [rng.randbytes(20) for _ in range(80)]
        fingerprints = [rng.choice(tokens) for _ in range(5_000)]
        sizes = [rng.randrange(1, 9_000) for _ in fingerprints]
        backup = Backup(label="m", fingerprints=fingerprints, sizes=sizes)
        reference = count_with_neighbors(backup)
        fast = interned_count(backup)
        assert fast.frequencies == reference.frequencies
        assert dict(fast.left.items()) == reference.left
        assert dict(fast.right.items()) == reference.right

    @given(token_streams(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_streaming_count_equals_reference(self, fingerprints, batch_size):
        sizes = [64 + (index % 5) for index in range(len(fingerprints))]
        backup = Backup(label="s", fingerprints=fingerprints, sizes=sizes)
        reference = count_with_neighbors(backup)
        counter = StreamingCount(batch_size=batch_size)
        counter.ingest_backup(backup)
        stats = counter.finalize()
        assert stats.frequencies == reference.frequencies
        assert list(stats.frequencies) == list(reference.frequencies)
        assert stats.sizes == reference.sizes
        for fingerprint in reference.left:
            assert stats.left.get(fingerprint) == reference.left[fingerprint]
            assert list(stats.left.get(fingerprint)) == list(
                reference.left[fingerprint]
            )
        for fingerprint in reference.right:
            assert stats.right.get(fingerprint) == reference.right[fingerprint]

    def test_streaming_count_fallback_mode(self, count_mode):
        rng = random.Random(6)
        tokens = [rng.randbytes(8) for _ in range(30)]
        fingerprints = [rng.choice(tokens) for _ in range(1_500)]
        sizes = [128] * len(fingerprints)
        backup = Backup(label="sf", fingerprints=fingerprints, sizes=sizes)
        reference = count_with_neighbors(backup)
        counter = StreamingCount(batch_size=64)
        counter.ingest_backup(backup)
        stats = counter.finalize()
        assert stats.frequencies == reference.frequencies
        for fingerprint in reference.left:
            assert stats.left.get(fingerprint) == reference.left[fingerprint]

    def test_counter_batch_alignment_is_invisible(self, count_mode):
        rng = random.Random(7)
        tokens = [rng.randbytes(8) for _ in range(20)]
        fingerprints = [rng.choice(tokens) for _ in range(800)]
        sizes = [rng.randrange(1, 500) for _ in fingerprints]
        whole = InternedCount()
        whole.ingest(fingerprints, sizes)
        split = InternedCount()
        for start in range(0, len(fingerprints), 37):
            split.ingest(
                fingerprints[start : start + 37], sizes[start : start + 37]
            )
        assert whole.stats().frequencies == split.stats().frequencies
        assert whole.stats().sizes == split.stats().sizes
        assert whole.total_chunks == split.total_chunks == len(fingerprints)

    def test_count_frequencies_counter_semantics(self):
        backup = Backup(
            label="cf",
            fingerprints=[b"b", b"a", b"b", b"c", b"b"],
            sizes=[1] * 5,
        )
        frequencies = count_frequencies(backup)
        assert frequencies == {b"b": 3, b"a": 1, b"c": 1}
        # First-occurrence order is what the insertion tie-break relies on.
        assert list(frequencies) == [b"b", b"a", b"c"]


class TestChunkVocabulary:
    def test_intern_is_stable_and_dense(self):
        vocabulary = ChunkVocabulary()
        assert vocabulary.intern(b"a") == 0
        assert vocabulary.intern(b"b") == 1
        assert vocabulary.intern(b"a") == 0
        assert len(vocabulary) == 2
        assert vocabulary.fingerprint(1) == b"b"
        assert vocabulary.id_of(b"c") is None
        assert b"a" in vocabulary and b"c" not in vocabulary

    def test_shared_vocabulary_across_counters(self):
        vocabulary = ChunkVocabulary()
        first = InternedCount(vocabulary)
        first.ingest([b"x", b"y"], [1, 2])
        second = InternedCount(vocabulary)
        second.ingest([b"y", b"z"], [3, 4])
        assert len(vocabulary) == 3
        assert second.stats().frequencies == {b"y": 1, b"z": 1}
        assert second.stats().sizes == {b"y": 3, b"z": 4}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            InternedCount().ingest([b"a"], [])


class TestBatchedUniqueIngest:
    def _engine(self):
        from repro.storage.ddfs import DDFSEngine

        return DDFSEngine(
            cache_budget_bytes=4096,
            bloom_capacity=10_000,
            container_size=4096,
        )

    def test_batch_matches_per_chunk_path(self):
        rng = random.Random(8)
        fingerprints = [rng.randbytes(20) for _ in range(500)]
        sizes = [rng.randrange(100, 900) for _ in fingerprints]

        reference = self._engine()
        for fingerprint, size in zip(fingerprints, sizes):
            assert reference.process_chunk(fingerprint, size) is True
        batched = self._engine()
        batched.ingest_unique_batch(fingerprints, sizes)

        assert (
            reference.containers.num_containers
            == batched.containers.num_containers
        )
        assert reference.containers.open_chunks == batched.containers.open_chunks
        assert len(reference.index) == len(batched.index)
        for fingerprint in fingerprints:
            assert reference.index.container_of(
                fingerprint
            ) == batched.index.container_of(fingerprint)
        # Metered bytes agree: updates always, index probes whenever the
        # bloom filters (same state, same order) produced false positives.
        assert (
            reference.index.stats.update_bytes
            == batched.index.stats.update_bytes
        )
        assert (
            reference.index.stats.index_bytes == batched.index.stats.index_bytes
        )

    def test_batch_report_mirrors_per_chunk_report(self):
        from repro.storage.metrics import BackupWriteReport

        rng = random.Random(9)
        fingerprints = [rng.randbytes(20) for _ in range(200)]
        sizes = [256] * len(fingerprints)
        reference = self._engine()
        reference_report = BackupWriteReport(label="r")
        for fingerprint, size in zip(fingerprints, sizes):
            reference.process_chunk(fingerprint, size, report=reference_report)
        batched = self._engine()
        batched_report = BackupWriteReport(label="b")
        batched.ingest_unique_batch(fingerprints, sizes, report=batched_report)
        assert batched_report.total_chunks == reference_report.total_chunks
        assert batched_report.unique_chunks == reference_report.unique_chunks
        assert batched_report.stored_bytes == reference_report.stored_bytes
        assert (
            batched_report.containers_written
            == reference_report.containers_written
        )
        assert (
            batched_report.bloom_false_positives
            == reference_report.bloom_false_positives
        )
