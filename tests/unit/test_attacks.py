"""Tests for the basic, locality-based, and advanced attacks.

Includes the paper's Figure 3 worked example, verified pair by pair.
"""

import pytest

from repro.attacks.advanced import AdvancedLocalityAttack
from repro.attacks.basic import BasicAttack
from repro.attacks.locality import LocalityAttack
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup


def backup(tokens, sizes=None, label="b"):
    tokens = [t.encode() for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


class TestBasicAttack:
    def test_identical_streams_with_distinct_frequencies(self):
        # Frequencies 3, 2, 1 are unambiguous, so ranks align exactly.
        plain = backup(["a", "a", "a", "b", "b", "c"])
        cipher = backup(["A", "A", "A", "B", "B", "C"])
        result = BasicAttack().run(cipher, plain)
        assert result.pairs == {b"A": b"a", b"B": b"b", b"C": b"c"}

    def test_rank_shift_after_update_misleads(self):
        # 'b' overtook 'a' in the target: rank pairing now crosses.
        plain = backup(["a", "a", "a", "b", "b", "c"])
        cipher = backup(["B", "B", "B", "A", "A", "C"])
        result = BasicAttack().run(cipher, plain)
        assert result.pairs[b"B"] == b"a"  # wrong, as expected

    def test_leaked_pairs_override(self):
        plain = backup(["a", "b"])
        cipher = backup(["A", "B"])
        result = BasicAttack().run(
            cipher, plain, leaked_pairs={b"A": b"truth"}
        )
        assert result.pairs[b"A"] == b"truth"


class TestFigure3Example:
    """The paper's worked example (§4.2, Figure 3), exactly."""

    M = ["M1", "M2", "M1", "M2", "M3", "M4", "M2", "M3", "M4"]
    C = ["C1", "C2", "C5", "C2", "C1", "C2", "C3", "C4", "C2", "C3", "C4", "C4"]

    def run_attack(self):
        attack = LocalityAttack(u=1, v=1, w=10**9)
        return attack.run(backup(self.C), backup(self.M))

    def test_seed_is_most_frequent_pair(self):
        # C2 (freq 5) pairs with M2 (freq 3).
        result = self.run_attack()
        assert result.pairs[b"C2"] == b"M2"

    def test_all_four_pairs_inferred(self):
        result = self.run_attack()
        for index in (1, 2, 3, 4):
            assert result.pairs[f"C{index}".encode()] == f"M{index}".encode()

    def test_c5_cannot_be_inferred(self):
        # C5's plaintext does not appear in M; the paper notes the attack
        # cannot infer it.
        result = self.run_attack()
        assert b"C5" not in result.pairs or result.pairs[b"C5"] not in {
            b"M1",
            b"M2",
            b"M3",
            b"M4",
        }
        # With v=1 it is in fact never paired at all:
        assert b"C5" not in result.pairs

    def test_exactly_the_paper_inference_set(self):
        result = self.run_attack()
        assert result.pairs == {
            b"C1": b"M1",
            b"C2": b"M2",
            b"C3": b"M3",
            b"C4": b"M4",
        }


class TestLocalityAttack:
    def test_parameter_validation(self):
        for bad in ({"u": 0}, {"v": 0}, {"w": 0}):
            with pytest.raises(ConfigurationError):
                LocalityAttack(**bad)

    def test_chain_propagation_through_unique_run(self):
        # One shared frequent chunk seeds the walk; the rest is a run of
        # unique chunks in identical order. v=2 lets the expansion move
        # past the frequent chunk's self-co-occurrence.
        plain = ["p"] * 3 + ["a", "b", "c", "d", "e"]
        cipher = ["P"] * 3 + ["A", "B", "C", "D", "E"]
        result = LocalityAttack(u=1, v=2, w=1000).run(
            backup(cipher), backup(plain)
        )
        assert result.pairs[b"A"] == b"a"
        assert result.pairs[b"E"] == b"e"

    def test_chain_stops_at_divergence(self):
        plain = ["p"] * 3 + ["a", "b", "x1", "x2", "x3"]
        cipher = ["P"] * 3 + ["A", "B"]  # target truncated after B
        result = LocalityAttack(u=1, v=2, w=1000).run(
            backup(cipher), backup(plain)
        )
        assert result.pairs[b"B"] == b"b"
        assert len(result.pairs) == 3  # P, A, B and nothing else

    def test_known_plaintext_seeds_counted_and_propagated(self):
        plain = ["a", "b", "c", "d"]
        cipher = ["A", "B", "C", "D"]
        leaked = {b"B": b"b", b"Z": b"z"}  # Z is not in the target stream
        result = LocalityAttack(u=1, v=1, w=1000).run(
            backup(cipher), backup(plain), leaked_pairs=leaked
        )
        # All leaked pairs appear in T (they count toward the rate)...
        assert result.pairs[b"Z"] == b"z"
        # ...and in-stream seeds propagate to neighbors.
        assert result.pairs[b"A"] == b"a"
        assert result.pairs[b"C"] == b"c"
        assert result.pairs[b"D"] == b"d"

    def test_w_bounds_queue_not_result(self):
        # With w=1 the queue holds one pending pair, yet chains still
        # propagate one hop at a time.
        plain = ["p"] * 3 + list("abcdefgh")
        cipher = ["P"] * 3 + list("ABCDEFGH")
        result = LocalityAttack(u=1, v=2, w=1).run(
            backup(cipher), backup(plain)
        )
        assert result.pairs[b"A"] == b"a"

    def test_iterations_counted(self):
        plain = ["p", "p", "a"]
        cipher = ["P", "P", "A"]
        result = LocalityAttack(u=1, v=1, w=10).run(
            backup(cipher), backup(plain)
        )
        assert result.iterations >= 1


class TestAdvancedLocalityAttack:
    def test_equals_locality_on_fixed_size_chunks(self, tiny_vm_series):
        from repro.defenses.pipeline import DefensePipeline, DefenseScheme

        encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
            tiny_vm_series
        )
        cipher = encrypted.backups[-1].ciphertext
        plain = tiny_vm_series.backups[-2]
        locality = LocalityAttack(u=1, v=5, w=10_000).run(cipher, plain)
        advanced = AdvancedLocalityAttack(u=1, v=5, w=10_000).run(cipher, plain)
        assert locality.pairs == advanced.pairs

    def test_size_channel_disambiguates_frequency_ties(self):
        # Two tied chunk pairs, distinguishable only by size. Sizes are
        # chosen so plaintext n -> ciphertext (n//16+1)*16 matching works.
        plain = backup(
            ["p", "p", "small", "p", "p", "big"],
            sizes=[4096, 4096, 1000, 4096, 4096, 9000],
        )
        cipher = backup(
            ["P", "P", "BIG", "P", "P", "SMALL"],
            sizes=[4112, 4112, 9008, 4112, 4112, 1008],
        )
        result = AdvancedLocalityAttack(u=1, v=2, w=100).run(cipher, plain)
        assert result.pairs.get(b"SMALL") == b"small"
        assert result.pairs.get(b"BIG") == b"big"

    def test_seed_analysis_is_size_classified(self):
        # Top-frequency chunks of *different* sizes must not pair.
        plain = backup(["m"] * 5 + ["x"], sizes=[1000] * 5 + [2000])
        cipher = backup(["C"] * 5 + ["Y"], sizes=[9008] * 5 + [2016])
        result = AdvancedLocalityAttack(u=1, v=1, w=100).run(cipher, plain)
        assert result.pairs.get(b"C") != b"m"
