"""Tests for the cross-figure summary digest."""

import json

import pytest

from repro.analysis.summary import (
    SummaryLine,
    render_summary,
    summarize_results,
)
from repro.common.errors import ConfigurationError


def write_figure(directory, stem, columns, rows):
    (directory / f"{stem}.json").write_text(
        json.dumps(
            {"figure": stem, "title": "t", "columns": columns, "rows": rows}
        )
    )


class TestSummarizeResults:
    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            summarize_results(tmp_path)

    def test_figure5_extraction(self, tmp_path):
        write_figure(
            tmp_path,
            "figure_5",
            ["dataset", "attack", "auxiliary", "target", "inference_rate"],
            [
                ["fsl", "locality", "Jan", "May", 0.05],
                ["fsl", "locality", "Apr", "May", 0.25],
                ["fsl", "advanced", "Apr", "May", 0.5],
                ["vm", "locality", "w12", "w13", 0.2],
            ],
        )
        lines = summarize_results(tmp_path)
        locality = next(
            line for line in lines if "FSL locality" in line.metric
        )
        # Takes the most recent auxiliary (last row of the series).
        assert locality.measured == "25.0%"
        assert locality.paper == "23.2%"

    def test_figure11_loss_computation(self, tmp_path):
        write_figure(
            tmp_path,
            "figure_11",
            ["dataset", "scheme", "backup", "storage_saving"],
            [
                ["storage-fsl", "mle", "b1", 0.5],
                ["storage-fsl", "mle", "b2", 0.78],
                ["storage-fsl", "combined", "b1", 0.45],
                ["storage-fsl", "combined", "b2", 0.74],
            ],
        )
        lines = summarize_results(tmp_path)
        loss = next(line for line in lines if "loss" in line.metric)
        assert loss.measured == "4.0pp"

    def test_figure13_direction(self, tmp_path):
        write_figure(
            tmp_path,
            "figure_13",
            ["scheme", "backup", "update_MiB", "index_MiB", "loading_MiB", "total_MiB"],
            [
                ["mle", "b1", 0, 0, 0, 1.2],
                ["combined", "b1", 0, 0, 0, 1.0],
            ],
        )
        lines = summarize_results(tmp_path)
        direction = next(line for line in lines if "first-backup" in line.metric)
        assert direction.measured == "combined cheaper"

    def test_against_real_results_if_present(self):
        """If the bench suite has populated results/, the digest builds."""
        try:
            lines = summarize_results("results")
        except ConfigurationError:
            pytest.skip("results/ not populated; run benches first")
        assert len(lines) >= 3


class TestRenderSummary:
    def test_alignment_and_content(self):
        lines = [
            SummaryLine("Fig 5", "metric one", "23.2%", "26.5%"),
            SummaryLine("Fig 10", "metric two longer", "0.2%", "0.4%"),
        ]
        text = render_summary(lines)
        assert "figure" in text and "paper" in text
        assert "23.2%" in text and "0.4%" in text
        header, rule, *rows = text.splitlines()
        assert len(rows) == 2
        assert set(rule) <= {"-", " "}
