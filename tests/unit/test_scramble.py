"""Tests for the scrambling defense (Algorithm 5)."""

import random
from collections import Counter

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.defenses.scramble import (
    DEQUE,
    FISHER_YATES,
    scramble_backup,
    scramble_indices,
    scramble_segmented,
)
from repro.defenses.segmentation import Segment


class TestScrambleIndices:
    @pytest.mark.parametrize("mode", [DEQUE, FISHER_YATES])
    def test_is_permutation(self, mode):
        rng = random.Random(1)
        order = scramble_indices(10, rng, mode)
        assert sorted(order) == list(range(10))

    def test_deque_mode_matches_algorithm5(self):
        """Each element goes to the front on an odd draw, else the back —
        replay the exact random draws to verify."""
        rng_a = random.Random(42)
        order = scramble_indices(6, rng_a, DEQUE)
        rng_b = random.Random(42)
        from collections import deque

        expected = deque()
        for index in range(6):
            if rng_b.getrandbits(1):
                expected.appendleft(index)
            else:
                expected.append(index)
        assert order == list(expected)

    def test_deterministic_given_seed(self):
        a = scramble_indices(20, random.Random(7), DEQUE)
        b = scramble_indices(20, random.Random(7), DEQUE)
        assert a == b

    def test_empty_and_singleton(self):
        rng = random.Random(0)
        assert scramble_indices(0, rng) == []
        assert scramble_indices(1, rng) == [0]

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            scramble_indices(5, random.Random(0), "bogus")

    def test_deque_actually_scrambles(self):
        rng = random.Random(3)
        orders = {tuple(scramble_indices(8, rng, DEQUE)) for _ in range(20)}
        assert len(orders) > 1


class TestScrambleSegmented:
    def test_multiset_preserved_per_segment(self):
        items = list(range(20))
        segments = [Segment(0, 7), Segment(7, 15), Segment(15, 20)]
        result = scramble_segmented(items, segments, random.Random(5))
        assert Counter(result[0:7]) == Counter(items[0:7])
        assert Counter(result[7:15]) == Counter(items[7:15])
        assert Counter(result[15:20]) == Counter(items[15:20])

    def test_elements_stay_within_their_segment(self):
        items = ["s0"] * 5 + ["s1"] * 5
        segments = [Segment(0, 5), Segment(5, 10)]
        result = scramble_segmented(items, segments, random.Random(1))
        assert result[:5] == ["s0"] * 5
        assert result[5:] == ["s1"] * 5

    def test_gap_in_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            scramble_segmented(
                list(range(10)),
                [Segment(0, 4), Segment(5, 10)],
                random.Random(0),
            )

    def test_uncovered_tail_rejected(self):
        with pytest.raises(ConfigurationError):
            scramble_segmented(
                list(range(10)), [Segment(0, 4)], random.Random(0)
            )


class TestScrambleBackup:
    def test_preserves_fingerprint_size_pairing(self):
        backup = Backup(
            label="b",
            fingerprints=[bytes([i]) for i in range(12)],
            sizes=[100 + i for i in range(12)],
        )
        segments = [Segment(0, 6), Segment(6, 12)]
        scrambled = scramble_backup(backup, segments, random.Random(2))
        pairing = dict(zip(backup.fingerprints, backup.sizes))
        for fingerprint, size in zip(scrambled.fingerprints, scrambled.sizes):
            assert pairing[fingerprint] == size

    def test_breaks_adjacency(self):
        backup = Backup(
            label="b",
            fingerprints=[bytes([i]) for i in range(64)],
            sizes=[1] * 64,
        )
        segments = [Segment(0, 32), Segment(32, 64)]
        scrambled = scramble_backup(backup, segments, random.Random(3))
        before = set(zip(backup.fingerprints, backup.fingerprints[1:]))
        after = set(zip(scrambled.fingerprints, scrambled.fingerprints[1:]))
        assert len(before & after) < len(before) / 2
