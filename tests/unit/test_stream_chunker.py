"""Tests for streaming chunking."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    ChunkerSpec,
    FixedSizeChunker,
    GearChunker,
    RabinChunker,
    StreamChunker,
)
from repro.chunking.base import reassemble
from repro.common.errors import ConfigurationError

SPEC = ChunkerSpec(min_size=64, avg_size=256, max_size=1024)


class TestStreamChunker:
    @pytest.mark.parametrize(
        "chunker",
        [GearChunker(SPEC), RabinChunker(SPEC), FixedSizeChunker(256)],
        ids=["gear", "rabin", "fixed"],
    )
    def test_matches_offline_split(self, chunker):
        data = random.Random(0).randbytes(50_000)
        offline = chunker.split(data)
        streamed = StreamChunker(chunker, read_size=4096).split_stream(
            io.BytesIO(data)
        )
        assert [c.data for c in streamed] == [c.data for c in offline]
        assert [c.offset for c in streamed] == [c.offset for c in offline]

    def test_empty_stream(self):
        chunker = StreamChunker(GearChunker(SPEC), read_size=4096)
        assert chunker.split_stream(io.BytesIO(b"")) == []

    def test_stream_shorter_than_one_read(self):
        chunker = StreamChunker(GearChunker(SPEC), read_size=65536)
        data = b"tiny"
        chunks = chunker.split_stream(io.BytesIO(data))
        assert reassemble(chunks) == data

    def test_read_size_validation(self):
        with pytest.raises(ConfigurationError):
            StreamChunker(GearChunker(SPEC), read_size=SPEC.max_size)

    @given(
        data=st.binary(min_size=0, max_size=30_000),
        read_size=st.sampled_from([2048, 4096, 9999]),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, data, read_size):
        chunker = GearChunker(SPEC)
        offline = [c.data for c in chunker.split(data)]
        streamed = [
            c.data
            for c in StreamChunker(chunker, read_size).split_stream(
                io.BytesIO(data)
            )
        ]
        assert streamed == offline

    def test_bounded_memory_window(self):
        """The stream chunker never buffers more than read_size + max_size
        bytes: emulate with a reader that records the largest pending tail."""
        chunker = GearChunker(SPEC)
        stream_chunker = StreamChunker(chunker, read_size=4096)
        data = random.Random(1).randbytes(100_000)
        largest = 0
        iterator = stream_chunker.iter_chunks(io.BytesIO(data))
        for chunk in iterator:
            largest = max(largest, chunk.size)
        assert largest <= SPEC.max_size
