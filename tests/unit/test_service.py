"""Tests for the multi-tenant service layer (traffic, server, meter,
scenario cells, serve-sim CLI)."""

import json

import pytest

from repro.attacks import LocalityAttack
from repro.cli import main
from repro.common.errors import (
    ConfigurationError,
    QuotaExceededError,
    StorageError,
)
from repro.scenarios.cells import ensure_cell_kind, execute_cell
from repro.scenarios.runner import Runner, rows_from
from repro.service import (
    DedupService,
    ServiceConfig,
    TrafficConfig,
    TrafficModel,
    attack_cells,
    service_grid_cells,
    service_report,
    simulate,
)
from repro.service.simulate import ATTACK_COLUMNS, SERVICE_GRID_COLUMNS
from repro.service.traffic import RESTORE, UPLOAD

SMALL = TrafficConfig(
    tenants=5,
    rounds=2,
    files_per_tenant=5,
    mean_file_chunks=8,
    restore_probability=0.5,
)

SMALL_SIM = ServiceConfig(
    tenants=6,
    rounds=2,
    files_per_tenant=6,
    mean_file_chunks=8,
    attack_targets=3,
)


def stream_signature(model: TrafficModel) -> list:
    return [
        (
            request.kind,
            request.tenant,
            request.label,
            request.restore_label,
            tuple(request.backup.fingerprints) if request.backup else None,
        )
        for request in model.requests()
    ]


class TestTrafficModel:
    def test_deterministic_per_seed(self):
        first = stream_signature(TrafficModel(seed=3, config=SMALL))
        second = stream_signature(TrafficModel(seed=3, config=SMALL))
        assert first == second

    def test_seed_changes_stream(self):
        first = stream_signature(TrafficModel(seed=3, config=SMALL))
        second = stream_signature(TrafficModel(seed=4, config=SMALL))
        assert first != second

    def test_requests_materialized_once(self):
        model = TrafficModel(seed=1, config=SMALL)
        assert model.requests() is model.requests()

    def test_one_upload_per_tenant_per_round(self):
        requests = TrafficModel(seed=2, config=SMALL).requests()
        uploads = [r for r in requests if r.kind == UPLOAD]
        assert len(uploads) == SMALL.tenants * SMALL.rounds
        assert len({r.label for r in uploads}) == len(uploads)

    def test_restores_reference_previous_round_uploads(self):
        requests = TrafficModel(seed=2, config=SMALL).requests()
        served: set[str] = set()
        saw_restore = False
        for request in requests:
            if request.kind == UPLOAD:
                served.add(request.label)
            else:
                saw_restore = True
                assert request.round > 0
                assert request.restore_label in served
        assert saw_restore  # probability 0.5 over 5 tenants: expected

    def test_duplication_factor_drives_cross_tenant_overlap(self):
        def mean_overlap(factor):
            config = TrafficConfig(
                tenants=6,
                rounds=1,
                files_per_tenant=8,
                mean_file_chunks=8,
                duplication_factor=factor,
            )
            per_tenant = {}
            for request in TrafficModel(seed=5, config=config).requests():
                per_tenant.setdefault(request.tenant, set()).update(
                    request.backup.fingerprints
                )
            tenants = sorted(per_tenant)
            values = [
                len(per_tenant[a] & per_tenant[b]) / len(per_tenant[b])
                for a in tenants
                for b in tenants
                if a != b
            ]
            return sum(values) / len(values)

        assert mean_overlap(0.8) > mean_overlap(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficConfig(tenants=0)
        with pytest.raises(ConfigurationError):
            TrafficConfig(duplication_factor=1.5)
        with pytest.raises(ConfigurationError):
            TrafficConfig(churn=-0.1)


def tiny_backup(tokens, label="up"):
    from repro.datasets.model import Backup

    return Backup(
        label=label,
        fingerprints=[t.encode() for t in tokens],
        sizes=[4096] * len(tokens),
    )


class TestDedupService:
    def test_identical_reupload_transfers_nothing(self):
        service = DedupService()
        backup = tiny_backup(["a", "b", "c"], "first")
        first = service.upload(0, backup, "first")
        assert first.observables.transferred_bytes > 0
        second = service.upload(0, tiny_backup(["a", "b", "c"]), "second")
        assert second.observables.transferred_bytes == 0
        assert second.observables.deduped_bytes == (
            second.observables.logical_bytes
        )

    def test_cross_tenant_dedup_and_restore(self):
        service = DedupService()
        service.upload(0, tiny_backup(["a", "b", "c"]), "up")
        result = service.upload(1, tiny_backup(["a", "b", "c"]), "up")
        assert result.observables.transferred_bytes == 0
        observables, recipe = service.restore(1, "up")
        assert observables.kind == RESTORE
        assert recipe.fingerprints == result.encrypted.ciphertext.fingerprints
        # Restores serve the full logical stream: no dedup signal.
        assert observables.transferred_bytes == observables.logical_bytes

    def test_observables_arithmetic(self):
        service = DedupService()
        # Intra-upload duplicates are client-side dedup'd too.
        result = service.upload(0, tiny_backup(["a", "b", "a", "a"]), "up")
        observables = result.observables
        assert observables.total_chunks == 4
        assert observables.unique_chunks == 2
        assert observables.stored_chunks == 2
        assert (
            observables.transferred_bytes + observables.deduped_bytes
            == observables.logical_bytes
        )

    def test_namespace_isolation(self):
        service = DedupService()
        service.upload(0, tiny_backup(["a"]), "mine")
        with pytest.raises(StorageError):
            service.restore(1, "mine")
        with pytest.raises(StorageError):
            service.restore(0, "nope")

    def test_duplicate_label_rejected(self):
        service = DedupService()
        service.upload(0, tiny_backup(["a"]), "up")
        with pytest.raises(ConfigurationError):
            service.upload(0, tiny_backup(["b"]), "up")

    def test_quota_enforced_per_tenant(self):
        service = DedupService(default_quota_bytes=10_000)
        service.upload(0, tiny_backup(["a", "b"]), "ok")  # ~8 KiB padded
        with pytest.raises(QuotaExceededError):
            service.upload(0, tiny_backup(["c"]), "over")
        # Another tenant's namespace is unaffected; duplicates still
        # count against *logical* usage (quotas bill pre-dedup bytes).
        result = service.upload(1, tiny_backup(["a", "b"]), "ok")
        assert result.observables.transferred_bytes == 0
        usage = service.tenant_usage(1)
        assert usage["logical_bytes"] > 0

    def test_explicit_registration_conflict(self):
        service = DedupService()
        service.register_tenant(7, quota_bytes=None)
        with pytest.raises(ConfigurationError):
            service.register_tenant(7)

    def test_metadata_bytes_metered(self):
        service = DedupService()
        result = service.upload(0, tiny_backup(["a", "b", "c"]), "up")
        # The dedup response batch-probes the index: >= one entry per
        # unique fingerprint.
        assert result.observables.metadata_bytes >= (
            service.engine.index.entry_bytes * 3
        )

    def test_duplicate_confirmation_prefetches_container(self):
        # Small containers seal immediately, so a re-upload confirms its
        # duplicates against the index and must mirror DDFS step S4:
        # prefetch the hit containers into the fingerprint cache.
        service = DedupService(container_size=4096)
        service.upload(0, tiny_backup(["a", "b", "c"]), "first")
        service.upload(1, tiny_backup(["a", "b", "c"]), "second")
        assert service.engine.index.stats.loading_bytes > 0
        # A third identical upload resolves at S1 (cache hits), without
        # re-probing the index per fingerprint.
        before = service.engine.index.stats.index_bytes
        result = service.upload(2, tiny_backup(["a", "b", "c"]), "third")
        assert service.engine.cache.hits > 0
        assert service.engine.index.stats.index_bytes == before
        assert result.observables.transferred_bytes == 0

    def test_single_tenant_population_has_no_cross_user_dedup(self):
        from dataclasses import replace

        from repro.service.simulate import headline_metrics

        trace = simulate(replace(SMALL_SIM, tenants=1, attack_targets=1))
        assert headline_metrics(trace)["cross_user_dedup_rate"] == 0.0


class TestSideChannelMeter:
    def test_bandwidth_signal_rows(self):
        trace = simulate(SMALL_SIM)
        signal = trace.meter.bandwidth_signal()
        assert len(signal) == SMALL_SIM.tenants * SMALL_SIM.rounds
        for row in signal:
            assert 0.0 <= row["dedup_fraction"] <= 1.0

    def test_overlap_matrix_shape_and_diagonal(self):
        trace = simulate(SMALL_SIM)
        matrix = trace.meter.overlap_matrix()
        tenants = trace.meter.tenants()
        assert sorted(matrix) == tenants
        for tenant in tenants:
            assert matrix[tenant][tenant] == 1.0

    def test_population_overlap_bounds_tenant_overlap(self):
        trace = simulate(SMALL_SIM)
        meter = trace.meter
        assert meter.overlap(None, 1) >= meter.overlap(0, 1)

    def test_evaluate_rejects_unknown_tenant(self):
        trace = simulate(SMALL_SIM)
        with pytest.raises(ConfigurationError):
            trace.meter.evaluate(LocalityAttack(), 99, 1)

    def test_cross_tenant_inference_tracks_duplication_factor(self):
        # The acceptance property at unit scale: nonzero cross-tenant
        # inference that decreases as the duplication factor drops.
        from dataclasses import replace

        high = service_report(replace(SMALL_SIM, duplication_factor=0.7))
        low = service_report(
            replace(SMALL_SIM, duplication_factor=0.05, popular_rate=0.04)
        )
        high_rate = high["attack"]["mean_inference_rate"]
        low_rate = low["attack"]["mean_inference_rate"]
        assert high_rate > 0.0
        assert high_rate > low_rate


class TestServiceCells:
    def test_lazy_kind_registration(self):
        assert ensure_cell_kind("service")
        assert ensure_cell_kind("service_attack")
        assert not ensure_cell_kind("nope")

    def test_attack_cells_execute_and_merge(self):
        cells = list(attack_cells(SMALL_SIM))
        assert len(cells) == SMALL_SIM.attack_targets
        results = Runner(jobs=1).run_cells(cells)
        rows = rows_from(results, ATTACK_COLUMNS)
        assert len(rows) == len(cells)
        target_index = ATTACK_COLUMNS.index("target_tenant")
        assert [row[target_index] for row in rows] == [0, 1, 2]

    def test_attack_cells_parallel_identical(self):
        cells = list(attack_cells(SMALL_SIM))
        serial = rows_from(Runner(jobs=1).run_cells(cells), ATTACK_COLUMNS)
        parallel = rows_from(Runner(jobs=2).run_cells(cells), ATTACK_COLUMNS)
        assert serial == parallel

    def test_grid_cells_cross_axes(self):
        cells = service_grid_cells(
            base=SMALL_SIM,
            duplication_factors=(0.1, 0.7),
            popularity_exponents=(1.5,),
        )
        assert len(cells) == 2
        rows = rows_from(
            Runner(jobs=1).run_cells(list(cells)), SERVICE_GRID_COLUMNS
        )
        factor_index = SERVICE_GRID_COLUMNS.index("duplication_factor")
        rate_index = SERVICE_GRID_COLUMNS.index("mean_inference_rate")
        by_factor = {row[factor_index]: row[rate_index] for row in rows}
        assert by_factor[0.7] > by_factor[0.1]

    def test_execute_cell_roundtrips_config(self):
        cell = attack_cells(SMALL_SIM)[0]
        rows = execute_cell(cell)
        fields = dict(rows[0])
        assert fields["target_tenant"] == 0
        assert 0.0 <= fields["inference_rate"] <= 1.0


class TestServeSimCLI:
    ARGS = ["serve-sim", "--tenants", "5", "--requests", "10", "--seed", "3"]

    def test_reports_byte_identical_across_runs_and_jobs(
        self, tmp_path, capsys
    ):
        paths = [str(tmp_path / name) for name in ("a.json", "b.json")]
        assert main(self.ARGS + ["--json", paths[0]]) == 0
        assert (
            main(self.ARGS + ["--jobs", "2", "--json", paths[1]]) == 0
        )
        first, second = (open(p, "rb").read() for p in paths)
        assert first == second
        payload = json.loads(first)
        assert payload["attack"]["mean_inference_rate"] >= 0.0
        assert payload["traffic"]["uploads"] == 10
        capsys.readouterr()

    def test_human_output_mentions_side_channel(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "cross-user dedup rate" in out
        assert "inference_rate" in out

    def test_quota_flag_rejects_uploads(self, capsys):
        assert main(self.ARGS + ["--quota-mib", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "rejected" in out

    def test_bad_duplication_factor_exits(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve-sim",
                    "--tenants",
                    "4",
                    "--duplication-factor",
                    "1.5",
                ]
            )

    def test_workdir_requires_persistent_backend(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--workdir", "/tmp/x"])

    def test_sqlite_backend_roundtrip(self, tmp_path, capsys):
        args = self.ARGS + [
            "--backend",
            "sqlite",
            "--workdir",
            str(tmp_path / "idx"),
        ]
        assert main(args) == 0
        capsys.readouterr()

    def test_nonempty_workdir_refused(self, tmp_path, capsys):
        # A persisted index from an earlier run would change dedup
        # results; the CLI must refuse instead of silently diverging.
        workdir = tmp_path / "idx"
        args = self.ARGS + ["--backend", "sqlite", "--workdir", str(workdir)]
        assert main(args) == 0
        capsys.readouterr()
        # The index persists *under* the directory, like attack --workdir.
        assert workdir.is_dir() and (workdir / "index.db").exists()
        with pytest.raises(SystemExit):
            main(args)

    def test_precreated_empty_workdir_accepted(self, tmp_path, capsys):
        workdir = tmp_path / "fresh"
        workdir.mkdir()
        args = self.ARGS + ["--backend", "sqlite", "--workdir", str(workdir)]
        assert main(args) == 0
        capsys.readouterr()

    def test_out_of_range_auxiliary_tenant_exits(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--tenants", "3", "--auxiliary-tenant", "99"])
        with pytest.raises(SystemExit):
            main(["serve-sim", "--tenants", "3", "--auxiliary-tenant", "-2"])

    def test_unknown_spec_kind_error_names_service_kinds(self):
        from repro.scenarios.spec import ScenarioSpec

        with pytest.raises(ConfigurationError) as excinfo:
            ScenarioSpec(name="typo", kind="servce")
        assert "service" in str(excinfo.value)
