"""Tests for the multi-node cluster tier (routing, rebalancing,
partial-view attacks, scenario cells, clustered serve-sim)."""

import json
import random
from collections import Counter
from dataclasses import replace

import pytest

from repro.attacks import LocalityAttack
from repro.cli import main
from repro.cluster import (
    DedupCluster,
    HashRing,
    ModuloRouter,
    open_router,
    partial_view_report,
    shard_view,
)
from repro.cluster.cells import CLUSTER_GRID_COLUMNS, cluster_grid_cells
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.scenarios.cells import ensure_cell_kind
from repro.scenarios.runner import Runner, rows_from
from repro.service import ServiceConfig, service_report


def pinned_keys(count: int, seed: int = 17) -> list[bytes]:
    rng = random.Random(seed)
    return [rng.randbytes(8) for _ in range(count)]


class TestRouters:
    def test_ring_deterministic_across_instances(self):
        keys = pinned_keys(500)
        first = [open_router("ring", 5).node_of(key) for key in keys]
        second = [open_router("ring", 5).node_of(key) for key in keys]
        assert first == second

    def test_ring_uses_every_node(self):
        keys = pinned_keys(5000)
        owners = Counter(open_router("ring", 8).node_of(key) for key in keys)
        assert sorted(owners) == list(range(8))

    def test_ring_shards_nest_as_cluster_grows(self):
        # Consistent hashing: adding nodes only *steals* keys from the
        # survivors, so an existing node's shard shrinks monotonically.
        # This is what makes the partial-view sweep monotone in N.
        keys = pinned_keys(3000)
        for node in (0, 1):
            previous = None
            for nodes in (2, 3, 4, 8, 16):
                shard = {
                    key
                    for key in keys
                    if open_router("ring", nodes).node_of(key) == node
                }
                if previous is not None:
                    assert shard <= previous
                previous = shard

    def test_modulo_routes_by_residue(self):
        router = open_router("modulo", 4)
        import zlib

        for key in pinned_keys(100):
            assert router.node_of(key) == zlib.crc32(key) % 4

    def test_membership_validation(self):
        ring = HashRing(range(3))
        with pytest.raises(ConfigurationError):
            ring.add_node(2)
        with pytest.raises(ConfigurationError):
            ring.remove_node(9)
        single = ModuloRouter([0])
        with pytest.raises(ConfigurationError):
            single.remove_node(0)
        with pytest.raises(ConfigurationError):
            open_router("nope", 4)

    def test_ring_remove_restores_prior_placement(self):
        # Removing the node that was added last must hand every stolen
        # key straight back to its previous owner.
        keys = pinned_keys(2000)
        small = open_router("ring", 4)
        grown = open_router("ring", 4)
        grown.add_node(4)
        grown.remove_node(4)
        assert [small.node_of(k) for k in keys] == [
            grown.node_of(k) for k in keys
        ]


class TestDedupCluster:
    def make_cluster(self, nodes=4, routing="ring", count=4000):
        keys = pinned_keys(count)
        sizes = [1024 + (i % 7) * 512 for i in range(count)]
        cluster = DedupCluster(nodes=nodes, routing=routing)
        cluster.store_stream(keys, sizes)
        return cluster, keys, sizes

    def test_store_stream_deduplicates(self):
        cluster = DedupCluster(nodes=3)
        keys = pinned_keys(100)
        stored = cluster.store_stream(keys * 2, [2048] * (len(keys) * 2))
        assert stored == len(keys)
        assert cluster.unique_chunks_stored() == len(keys)
        # Every chunk lives on exactly the node the router names.
        for node_id, node in cluster.nodes.items():
            for fingerprint in node.chunks:
                assert cluster.node_of(fingerprint) == node_id

    def test_per_node_metering_sums_to_totals(self):
        cluster, keys, sizes = self.make_cluster()
        report = cluster.load_report()
        assert report["total_chunks"] == len(keys)
        assert sum(
            entry["chunks"] for entry in report["per_node"]
        ) == len(keys)
        assert cluster.stored_bytes == sum(sizes)
        assert report["skew"]["imbalance"] >= 1.0

    def test_ring_add_node_moves_within_bound(self):
        cluster, keys, _ = self.make_cluster()
        report = cluster.add_node()
        assert report.total_keys == len(keys)
        assert report.within_bound()
        # Moved keys all landed on the new node, and placement is
        # consistent again.
        assert report.per_node_moves == ((4, report.moved_keys),)
        assert len(cluster.nodes[4].chunks) == report.moved_keys
        for node_id, node in cluster.nodes.items():
            for fingerprint in node.chunks:
                assert cluster.node_of(fingerprint) == node_id

    def test_modulo_add_node_moves_most_keys(self):
        ring_report = self.make_cluster(routing="ring")[0].add_node()
        modulo_report = self.make_cluster(routing="modulo")[0].add_node()
        assert modulo_report.moved_fraction > 0.5
        assert modulo_report.moved_keys > 2 * ring_report.moved_keys

    def test_remove_node_drains_exactly_its_shard(self):
        cluster, keys, _ = self.make_cluster()
        drained = len(cluster.nodes[2].chunks)
        report = cluster.remove_node(2)
        assert report.moved_keys == drained
        assert cluster.unique_chunks_stored() == len(keys)
        assert 2 not in cluster.nodes
        for node_id, node in cluster.nodes.items():
            for fingerprint in node.chunks:
                assert cluster.node_of(fingerprint) == node_id

    def test_dedup_response_after_rebalance(self):
        # Re-uploading the same stream after a membership change must
        # resolve everything as duplicate — nothing re-stored.
        cluster, keys, sizes = self.make_cluster()
        cluster.add_node()
        stored = cluster.store_stream(keys, sizes)
        assert stored == 0

    def test_modulo_remove_rebalances_survivors_too(self):
        # Modulo routing remaps residues on *every* node when the count
        # changes; a remove must sweep the survivors, not just re-home
        # the drained shard, or placement diverges from the router and
        # re-uploads silently duplicate.
        cluster, keys, sizes = self.make_cluster(routing="modulo")
        report = cluster.remove_node(3)
        assert report.moved_fraction > 0.5  # ≈ (N-1)/N, not just 1/N
        for node_id, node in cluster.nodes.items():
            for fingerprint in node.chunks:
                assert cluster.node_of(fingerprint) == node_id
        assert cluster.store_stream(keys, sizes) == 0
        assert cluster.unique_chunks_stored() == len(keys)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DedupCluster(nodes=0)
        with pytest.raises(ConfigurationError):
            DedupCluster(nodes=2, index_path="/tmp/x")
        cluster = DedupCluster(nodes=1)
        with pytest.raises(ConfigurationError):
            cluster.remove_node(0)


def encrypted_fixture():
    from repro.analysis.workloads import encrypted_series
    from repro.defenses.pipeline import DefenseScheme

    return encrypted_series("synthetic", DefenseScheme.MLE)


class TestPartialView:
    def test_shard_view_partitions_the_stream(self):
        backup = Backup(
            label="b",
            fingerprints=pinned_keys(300),
            sizes=[4096] * 300,
        )
        router = open_router("ring", 4)
        shards = [shard_view(backup, router, node) for node in range(4)]
        assert sum(len(shard) for shard in shards) == len(backup)
        # Arrival order survives projection.
        for shard in shards:
            positions = [
                backup.fingerprints.index(fp) for fp in shard.fingerprints[:5]
            ]
            assert positions == sorted(positions)

    def test_single_node_equals_full_view(self):
        # Acceptance edge case: a one-node cluster is the paper's
        # adversary — identical numbers to the standard evaluator.
        from repro.attacks.evaluation import AttackEvaluator

        encrypted = encrypted_fixture()
        attack = LocalityAttack()
        full = AttackEvaluator(encrypted).run(attack, auxiliary=-2, target=-1)
        view = partial_view_report(
            attack,
            encrypted[-1],
            encrypted.plaintext[-2],
            nodes=1,
            routing="ring",
        )
        assert view.shard_fraction == 1.0
        assert view.report.correct_pairs == full.correct_pairs
        assert view.report.inferred_pairs == full.inferred_pairs
        assert view.report.inference_rate == full.inference_rate

    def test_empty_shard_scores_zero_without_failing(self):
        # Acceptance edge case: a compromised node that happens to own
        # none of the target's chunks observes nothing.
        class LonelyRouter:
            policy = "ring"
            node_ids = (0, 1)

            def node_of(self, key):
                return 0  # node 1 never owns anything

        from repro.cluster import evaluate_partial_view

        encrypted = encrypted_fixture()
        view = evaluate_partial_view(
            LocalityAttack(),
            encrypted[-1],
            encrypted.plaintext[-2],
            LonelyRouter(),
            compromised_node=1,
        )
        assert view.shard_chunks == 0
        assert view.report.inference_rate == 0.0
        assert view.report.inferred_pairs == 0
        assert view.report.unique_ciphertext_chunks > 0

    def test_unknown_node_rejected(self):
        encrypted = encrypted_fixture()
        with pytest.raises(ConfigurationError):
            partial_view_report(
                LocalityAttack(),
                encrypted[-1],
                encrypted.plaintext[-2],
                nodes=4,
                compromised_node=9,
            )

    def test_leaked_pairs_restricted_to_shard(self):
        encrypted = encrypted_fixture()
        router = open_router("ring", 4)
        view = partial_view_report(
            LocalityAttack(),
            encrypted[-1],
            encrypted.plaintext[-2],
            nodes=4,
            compromised_node=0,
            leakage_rate=0.01,
        )
        target_shard = shard_view(encrypted[-1].ciphertext, router, 0)
        # The shard holds ~1/4 of unique chunks, so the restricted leak
        # must be well below the full-view sample size.
        full_sample = round(0.01 * encrypted[-1].unique_ciphertext_chunks)
        assert 0 <= view.report.leaked_pairs < full_sample
        assert view.shard_unique_chunks == len(
            set(target_shard.fingerprints)
        )


class TestClusterCells:
    def test_lazy_kind_registration(self):
        assert ensure_cell_kind("cluster")

    def test_grid_expands_axes(self):
        cells = cluster_grid_cells(
            dataset="synthetic",
            schemes=("mle", "minhash"),
            nodes=(1, 2),
            routings=("ring", "modulo"),
        )
        assert len(cells) == 2 * 2 * 2
        kinds = {cell.kind for cell in cells}
        assert kinds == {"cluster"}

    def test_rows_monotone_and_deterministic_across_jobs(self):
        # Acceptance properties at unit scale: routing determinism
        # across reruns and job counts, and a partial-view inference
        # rate that never increases with cluster size.
        cells = list(
            cluster_grid_cells(
                dataset="synthetic",
                nodes=(1, 2, 4),
                leakage_rate=0.002,
                seed=3,
            )
        )
        serial = rows_from(
            Runner(jobs=1).run_cells(cells), CLUSTER_GRID_COLUMNS
        )
        rerun = rows_from(
            Runner(jobs=1).run_cells(cells), CLUSTER_GRID_COLUMNS
        )
        parallel = rows_from(
            Runner(jobs=2).run_cells(cells), CLUSTER_GRID_COLUMNS
        )
        assert serial == rerun == parallel
        rate_index = CLUSTER_GRID_COLUMNS.index("inference_rate")
        nodes_index = CLUSTER_GRID_COLUMNS.index("nodes")
        by_nodes = {row[nodes_index]: row[rate_index] for row in serial}
        assert by_nodes[1] >= by_nodes[2] >= by_nodes[4]
        assert by_nodes[1] > 0.0


class TestClusteredService:
    CONFIG = ServiceConfig(
        tenants=5,
        rounds=2,
        files_per_tenant=5,
        mean_file_chunks=8,
        attack_targets=2,
        nodes=3,
    )

    def test_report_gains_cluster_section(self):
        report = service_report(self.CONFIG)
        cluster = report["cluster"]
        assert cluster["nodes"] == 3
        assert len(cluster["per_node"]) == 3
        assert report["config"]["nodes"] == 3
        partial = cluster["partial_view"]
        assert len(partial["pairs"]) == self.CONFIG.attack_targets
        assert (
            partial["mean_inference_rate"]
            <= report["attack"]["mean_inference_rate"]
        )

    def test_single_node_report_shape_unchanged(self):
        report = service_report(replace(self.CONFIG, nodes=1))
        assert "cluster" not in report
        assert "nodes" not in report["config"]
        assert "routing" not in report["config"]

    def test_serve_sim_cli_clustered_deterministic(self, tmp_path, capsys):
        args = [
            "serve-sim",
            "--tenants",
            "5",
            "--requests",
            "10",
            "--seed",
            "3",
            "--nodes",
            "3",
        ]
        paths = [str(tmp_path / name) for name in ("a.json", "b.json")]
        assert main(args + ["--json", paths[0]]) == 0
        assert main(args + ["--jobs", "2", "--json", paths[1]]) == 0
        first, second = (open(path, "rb").read() for path in paths)
        assert first == second
        payload = json.loads(first)
        assert payload["cluster"]["routing"] == "ring"
        out = capsys.readouterr().out
        assert "partial view" in out

    def test_attack_cli_partial_view(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "synthetic",
                    "--attack",
                    "locality",
                    "--nodes",
                    "4",
                    "--compromised-node",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "partial-view node 1/4" in out

    def test_attack_cli_validates_compromised_node(self):
        with pytest.raises(SystemExit):
            main(["attack", "synthetic", "--nodes", "2", "--compromised-node", "5"])
        with pytest.raises(SystemExit):
            main(
                [
                    "attack",
                    "synthetic",
                    "--nodes",
                    "2",
                    "--workdir",
                    "/tmp/pv",
                ]
            )
