"""Tests for backup deletion and garbage collection."""

import pytest

from repro.common.errors import ConfigurationError, StorageError
from repro.datasets.model import Backup
from repro.storage.ddfs import DDFSEngine
from repro.storage.gc import ReferenceTracker, collect_garbage


def backup(tokens, sizes=None, label="b"):
    tokens = [t.encode() for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


def make_engine(container_chunks=4):
    return DDFSEngine(
        cache_budget_bytes=64 * 1024,
        bloom_capacity=10_000,
        container_size=container_chunks * 4096,
    )


class TestReferenceTracker:
    def test_register_and_counts(self):
        tracker = ReferenceTracker()
        tracker.register_backup(backup(["a", "b", "a"], label="b1"))
        assert tracker.is_live(b"a")
        assert tracker.live_chunks() == 2

    def test_duplicate_registration_rejected(self):
        tracker = ReferenceTracker()
        tracker.register_backup(backup(["a"], label="b1"))
        with pytest.raises(ConfigurationError):
            tracker.register_backup(backup(["a"], label="b1"))

    def test_delete_releases_references(self):
        tracker = ReferenceTracker()
        tracker.register_backup(backup(["a", "b"], label="b1"))
        tracker.register_backup(backup(["a", "c"], label="b2"))
        died = tracker.delete_backup("b1")
        assert died == 1  # b is dead, a still referenced by b2
        assert tracker.is_live(b"a")
        assert not tracker.is_live(b"b")

    def test_delete_unknown_backup(self):
        with pytest.raises(StorageError):
            ReferenceTracker().delete_backup("missing")

    def test_registered_backups(self):
        tracker = ReferenceTracker()
        tracker.register_backup(backup(["a"], label="b1"))
        assert tracker.registered_backups() == ["b1"]


class TestCollectGarbage:
    def _setup(self):
        """Two backups sharing half their chunks, then delete the first."""
        engine = make_engine(container_chunks=4)
        tracker = ReferenceTracker()
        first = backup([f"x{i}" for i in range(8)], label="b1")
        second = backup(
            [f"x{i}" for i in range(4)] + [f"y{i}" for i in range(4)],
            label="b2",
        )
        engine.process_backup(first)
        engine.process_backup(second)
        tracker.register_backup(first)
        tracker.register_backup(second)
        return engine, tracker

    def test_no_garbage_while_all_live(self):
        engine, tracker = self._setup()
        report = collect_garbage(engine, tracker)
        assert report.containers_reclaimed == 0
        assert report.bytes_reclaimed == 0

    def test_reclaim_after_deletion(self):
        engine, tracker = self._setup()
        tracker.delete_backup("b1")  # x4..x7 become dead
        report = collect_garbage(engine, tracker, live_ratio_threshold=0.9)
        assert report.containers_reclaimed >= 1
        assert report.bytes_reclaimed == 4 * 4096
        assert report.chunks_dead == 4

    def test_survivors_remain_restorable(self):
        engine, tracker = self._setup()
        tracker.delete_backup("b1")
        collect_garbage(engine, tracker, live_ratio_threshold=0.9)
        # Every live chunk still resolves through the index to an existing
        # container.
        for token in [f"x{i}" for i in range(4)] + [f"y{i}" for i in range(4)]:
            container_id = engine.index.container_of(token.encode())
            assert container_id is not None
            container = engine.containers.get(container_id)
            assert token.encode() in container.fingerprints()

    def test_dead_chunks_unindexed(self):
        engine, tracker = self._setup()
        tracker.delete_backup("b1")
        collect_garbage(engine, tracker, live_ratio_threshold=0.9)
        for index in range(4, 8):
            assert engine.index.container_of(f"x{index}".encode()) is None

    def test_rewriting_dead_content_after_gc(self):
        """A chunk whose content returns after GC must be storable again
        (Bloom filter says maybe, index says no -> unique path)."""
        engine, tracker = self._setup()
        tracker.delete_backup("b1")
        collect_garbage(engine, tracker, live_ratio_threshold=0.9)
        third = backup([f"x{i}" for i in range(4, 8)], label="b3")
        report = engine.process_backup(third)
        assert report.unique_chunks == 4
        assert report.bloom_false_positives == 4  # stale bloom bits

    def test_threshold_validation(self):
        engine, tracker = self._setup()
        with pytest.raises(ConfigurationError):
            collect_garbage(engine, tracker, live_ratio_threshold=0.0)

    def test_high_live_ratio_containers_left_alone(self):
        engine = make_engine(container_chunks=8)
        tracker = ReferenceTracker()
        first = backup([f"x{i}" for i in range(8)], label="b1")
        engine.process_backup(first)
        tracker.register_backup(first)
        # Kill one of eight chunks: live ratio 7/8 stays above 0.5.
        tracker.register_backup(backup([f"x{i}" for i in range(1, 8)], label="b2"))
        tracker.delete_backup("b1")
        report = collect_garbage(engine, tracker, live_ratio_threshold=0.5)
        assert report.containers_reclaimed == 0
