"""Tests for the backup model, trace statistics, and trace I/O."""

import pytest

from repro.common.errors import ConfigurationError, IntegrityError
from repro.datasets.model import Backup, BackupSeries, ChunkRecord
from repro.datasets.stats import (
    adjacency_preservation,
    chunk_frequencies,
    content_overlap,
    frequency_cdf,
    series_frequencies,
    storage_savings,
)
from repro.datasets.trace import load_series, save_series


def backup(tokens, sizes=None, label="b"):
    tokens = [t.encode() for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


class TestBackup:
    def test_append_and_len(self):
        b = Backup(label="x")
        b.append(b"fp", 100)
        assert len(b) == 1
        assert b.logical_bytes == 100

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ConfigurationError):
            Backup(label="x", fingerprints=[b"a"], sizes=[])

    def test_unique_bytes_counts_first_occurrence(self):
        b = backup(["a", "b", "a"], sizes=[100, 200, 100])
        assert b.logical_bytes == 400
        assert b.unique_bytes() == 300
        assert b.unique_fingerprints() == {b"a", b"b"}

    def test_records_iteration(self):
        b = backup(["a", "b"], sizes=[1, 2])
        records = list(b.records())
        assert records == [ChunkRecord(b"a", 1), ChunkRecord(b"b", 2)]

    def test_size_of(self):
        b = backup(["a", "b"], sizes=[10, 20])
        assert b.size_of(b"b") == 20


class TestBackupSeries:
    def test_dedup_ratio(self):
        series = BackupSeries(
            name="t",
            backups=[backup(["a", "b"]), backup(["a", "b"])],
        )
        assert series.dedup_ratio() == pytest.approx(2.0)

    def test_unique_bytes_across_backups(self):
        series = BackupSeries(
            name="t",
            backups=[backup(["a"]), backup(["a", "b"])],
        )
        assert series.unique_bytes() == 2 * 4096
        assert series.logical_bytes == 3 * 4096

    def test_invalid_chunking(self):
        with pytest.raises(ConfigurationError):
            BackupSeries(name="t", chunking="weird")

    def test_labels_and_indexing(self):
        series = BackupSeries(
            name="t", backups=[backup(["a"], label="L0"), backup(["b"], label="L1")]
        )
        assert series.labels() == ["L0", "L1"]
        assert series[1].label == "L1"
        assert len(series) == 2


class TestStats:
    def test_chunk_frequencies(self):
        counts = chunk_frequencies(backup(["a", "a", "b"]))
        assert counts[b"a"] == 2

    def test_series_frequencies_aggregates(self):
        series = BackupSeries(
            name="t", backups=[backup(["a"]), backup(["a", "b"])]
        )
        counts = series_frequencies(series)
        assert counts[b"a"] == 2
        assert counts[b"b"] == 1

    def test_frequency_cdf(self):
        cdf = frequency_cdf(chunk_frequencies(backup(["a", "a", "a", "b"])))
        assert cdf.frequencies == [1, 3]
        assert cdf.quantiles == [0.5, 1.0]
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(100) == 1.0
        assert cdf.max_frequency == 3

    def test_storage_savings_monotone_for_identical_backups(self):
        same = backup(["a", "b", "c"])
        savings = storage_savings([same, same, same])
        assert savings[0] == 0.0
        assert savings[1] == pytest.approx(0.5)
        assert savings[2] == pytest.approx(2 / 3)

    def test_content_overlap(self):
        aux = backup(["a", "b", "c"])
        target = backup(["b", "c", "d", "e"])
        assert content_overlap(aux, target) == pytest.approx(0.5)

    def test_adjacency_preservation(self):
        aux = backup(["a", "b", "c", "d"])
        target = backup(["a", "b", "x", "c", "d"])
        # target pairs: (a,b),(b,x),(x,c),(c,d) -> 2 of 4 preserved
        assert adjacency_preservation(aux, target) == pytest.approx(0.5)

    def test_empty_inputs(self):
        empty = backup([])
        assert content_overlap(empty, empty) == 0.0
        assert adjacency_preservation(empty, empty) == 0.0


class TestTraceIO:
    def test_roundtrip(self, tmp_path, tiny_fsl_series):
        path = tmp_path / "fsl.trace"
        save_series(tiny_fsl_series, path)
        loaded = load_series(path)
        assert loaded.name == tiny_fsl_series.name
        assert loaded.chunking == tiny_fsl_series.chunking
        assert len(loaded) == len(tiny_fsl_series)
        for a, b in zip(loaded.backups, tiny_fsl_series.backups):
            assert a.label == b.label
            assert a.fingerprints == b.fingerprints
            assert a.sizes == b.sizes

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("hello\n")
        with pytest.raises(IntegrityError):
            load_series(path)

    def test_rejects_record_before_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# freqdedup-trace v1\nabcdef 123\n")
        with pytest.raises(IntegrityError):
            load_series(path)

    def test_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad2.trace"
        path.write_text(
            "# freqdedup-trace v1\n[backup b]\nnot-hex not-int\n"
        )
        with pytest.raises(IntegrityError):
            load_series(path)
