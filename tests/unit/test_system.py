"""Tests for the end-to-end EncryptedDedupSystem (content level)."""

import pytest

from repro.chunking import ChunkerSpec, GearChunker
from repro.common.errors import StorageError
from repro.crypto.keymanager import KeyManager
from repro.crypto.mle import ConvergentEncryption, ServerAidedMLE
from repro.datasets.filesystem import build_tree, deterministic_bytes
from repro.defenses.segmentation import SegmentationSpec
from repro.storage.system import EncryptedDedupSystem

SMALL_CHUNKS = ChunkerSpec(min_size=512, avg_size=2048, max_size=8192)
SMALL_SEGMENTS = SegmentationSpec(
    min_bytes=8 * 1024, avg_bytes=16 * 1024, max_bytes=32 * 1024
)


def make_system(use_minhash=False, use_scramble=False, scheme=None):
    return EncryptedDedupSystem(
        scheme=scheme or ConvergentEncryption(),
        chunker=GearChunker(SMALL_CHUNKS),
        use_minhash=use_minhash,
        use_scramble=use_scramble,
        segmentation=SMALL_SEGMENTS,
        container_size=64 * 1024,
    )


@pytest.mark.parametrize(
    "use_minhash,use_scramble",
    [(False, False), (True, False), (False, True), (True, True)],
)
def test_put_get_roundtrip_all_schemes(use_minhash, use_scramble):
    system = make_system(use_minhash, use_scramble)
    data = deterministic_bytes(1, "file", 150_000)
    stored = system.put_file("f.bin", data)
    system.flush()
    assert system.get_file(stored) == data


def test_server_aided_backend():
    system = make_system(scheme=ServerAidedMLE(KeyManager(b"s" * 32)))
    data = deterministic_bytes(2, "file", 50_000)
    stored = system.put_file("f.bin", data)
    system.flush()
    assert system.get_file(stored) == data


def test_deduplication_across_identical_files():
    system = make_system()
    data = deterministic_bytes(3, "file", 100_000)
    system.put_file("a.bin", data)
    system.flush()
    before = system.stored_bytes
    system.put_file("b.bin", data)  # identical copy
    system.flush()
    assert system.stored_bytes == before  # nothing new stored


def test_minhash_dedups_identical_files():
    system = make_system(use_minhash=True)
    data = deterministic_bytes(4, "file", 100_000)
    system.put_file("a.bin", data)
    system.flush()
    before = system.stored_bytes
    system.put_file("b.bin", data)
    system.flush()
    assert system.stored_bytes == before


def test_edited_file_stores_only_changed_region():
    system = make_system()
    data = deterministic_bytes(5, "file", 200_000)
    system.put_file("v1.bin", data)
    system.flush()
    before = system.stored_bytes
    edited = data[:100_000] + b"EDIT" * 8 + data[100_032:]
    system.put_file("v2.bin", edited)
    system.flush()
    added = system.stored_bytes - before
    assert 0 < added < len(data) * 0.2


def test_whole_tree_roundtrip():
    system = make_system(use_minhash=True, use_scramble=True)
    tree = build_tree(seed=6, num_files=8, mean_file_size=20_000)
    handles = {
        file.path: system.put_file(file.path, file.data)
        for file in tree.iter_files()
    }
    system.flush()
    for file in tree.iter_files():
        assert system.get_file(handles[file.path]) == file.data


def test_missing_chunk_raises():
    system = make_system()
    data = deterministic_bytes(7, "file", 10_000)
    stored = system.put_file("f.bin", data)
    # No flush: the open container is not sealed, so the fingerprint index
    # does not know the chunks yet.
    with pytest.raises(StorageError):
        system.get_file(stored)


def test_scramble_changes_upload_order_but_not_recipes():
    plain_system = make_system(use_minhash=True, use_scramble=False)
    scrambled_system = make_system(use_minhash=True, use_scramble=True)
    data = deterministic_bytes(8, "file", 120_000)
    a = plain_system.put_file("f.bin", data)
    b = scrambled_system.put_file("f.bin", data)
    # Same recipes (logical order identical)...
    assert [r.tag for r in a.recipe.chunks] == [r.tag for r in b.recipe.chunks]
    plain_system.flush()
    scrambled_system.flush()
    # ...different physical layout (container entry order).
    plain_order = [
        e.fingerprint
        for cid in sorted(plain_system.engine.containers.containers)
        for e in plain_system.engine.containers.get(cid).entries
    ]
    scrambled_order = [
        e.fingerprint
        for cid in sorted(scrambled_system.engine.containers.containers)
        for e in scrambled_system.engine.containers.get(cid).entries
    ]
    assert plain_order != scrambled_order
    assert sorted(plain_order) == sorted(scrambled_order)
    # And both restore fine.
    assert plain_system.get_file(a) == data
    assert scrambled_system.get_file(b) == data
