"""Property-based invariants across the attack/defense stack.

These encode the contracts every experiment implicitly relies on, over
randomly generated miniature workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    AdvancedLocalityAttack,
    AttackEvaluator,
    BasicAttack,
    LocalityAttack,
)
from repro.datasets.model import Backup, BackupSeries
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.defenses.segmentation import SegmentationSpec

# Miniature random backup streams: tokens from a small alphabet so
# duplicates and shared content arise naturally.
_tokens = st.lists(
    st.integers(min_value=0, max_value=40), min_size=2, max_size=120
)

_SPEC = SegmentationSpec(min_bytes=4 * 4096, avg_bytes=8 * 4096, max_bytes=16 * 4096)


def _backup(values, label):
    return Backup(
        label=label,
        fingerprints=[value.to_bytes(4, "big") for value in values],
        sizes=[4096 + 512 * (value % 5) for value in values],
    )


def _series(aux_values, target_values):
    return BackupSeries(
        name="prop",
        backups=[_backup(aux_values, "aux"), _backup(target_values, "target")],
    )


@st.composite
def _pairs(draw):
    return draw(_tokens), draw(_tokens)


class TestPipelineInvariants:
    @given(values=_pairs())
    @settings(max_examples=30, deadline=None)
    def test_truth_maps_are_consistent(self, values):
        aux, target = values
        for scheme in DefenseScheme:
            encrypted = DefensePipeline(scheme, segmentation=_SPEC).encrypt_series(
                _series(aux, target)
            )
            for encrypted_backup, plain in zip(
                encrypted.backups, encrypted.plaintext.backups
            ):
                # Every ciphertext fp resolves to a plaintext fp of this
                # backup, and the stream lengths agree.
                assert len(encrypted_backup.ciphertext) == len(plain)
                plain_unique = plain.unique_fingerprints()
                for cipher_fp in set(encrypted_backup.ciphertext.fingerprints):
                    assert encrypted_backup.truth[cipher_fp] in plain_unique

    @given(values=_pairs())
    @settings(max_examples=30, deadline=None)
    def test_ciphertext_sizes_always_block_padded(self, values):
        aux, target = values
        encrypted = DefensePipeline(
            DefenseScheme.COMBINED, segmentation=_SPEC
        ).encrypt_series(_series(aux, target))
        for encrypted_backup in encrypted.backups:
            for size in encrypted_backup.ciphertext.sizes:
                assert size % 16 == 0
                assert size > 0

    @given(values=_pairs())
    @settings(max_examples=30, deadline=None)
    def test_minhash_never_merges_distinct_plaintexts(self, values):
        aux, target = values
        encrypted = DefensePipeline(
            DefenseScheme.MINHASH, segmentation=_SPEC
        ).encrypt_series(_series(aux, target))
        # A ciphertext fingerprint must never be claimed by two different
        # plaintext chunks (that would corrupt deduplicated storage).
        claims: dict[bytes, bytes] = {}
        for encrypted_backup in encrypted.backups:
            for cipher_fp, plain_fp in encrypted_backup.truth.items():
                assert claims.setdefault(cipher_fp, plain_fp) == plain_fp


class TestAttackInvariants:
    @given(values=_pairs())
    @settings(max_examples=25, deadline=None)
    def test_inference_rate_bounded(self, values):
        aux, target = values
        encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
            _series(aux, target)
        )
        evaluator = AttackEvaluator(encrypted)
        for attack in (
            BasicAttack(),
            LocalityAttack(u=1, v=3, w=100),
            AdvancedLocalityAttack(u=1, v=3, w=100),
        ):
            report = evaluator.run(attack, auxiliary=0, target=1)
            assert 0.0 <= report.inference_rate <= 1.0
            assert report.correct_pairs <= report.inferred_pairs

    @given(values=_pairs())
    @settings(max_examples=25, deadline=None)
    def test_attacks_never_claim_a_ciphertext_twice(self, values):
        aux, target = values
        encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
            _series(aux, target)
        )
        cipher = encrypted.backups[1].ciphertext
        plain = encrypted.plaintext.backups[0]
        result = LocalityAttack(u=1, v=3, w=100).run(cipher, plain)
        # pairs is a dict keyed by ciphertext fp — uniqueness is structural
        # — but every inferred plaintext must come from the auxiliary.
        aux_unique = plain.unique_fingerprints()
        for plain_fp in result.pairs.values():
            assert plain_fp in aux_unique

    @given(values=_pairs(), leakage=st.sampled_from([0.05, 0.2, 0.5]))
    @settings(max_examples=25, deadline=None)
    def test_leaked_pairs_always_correct(self, values, leakage):
        aux, target = values
        encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
            _series(aux, target)
        )
        evaluator = AttackEvaluator(encrypted)
        report = evaluator.run(
            LocalityAttack(u=1, v=3, w=100),
            auxiliary=0,
            target=1,
            leakage_rate=leakage,
        )
        # Leaked pairs are ground truth, so correct >= leaked.
        assert report.correct_pairs >= report.leaked_pairs

    @given(values=_pairs())
    @settings(max_examples=15, deadline=None)
    def test_identical_backups_with_unique_frequencies_fully_inferred(
        self, values
    ):
        stream, _ = values
        # Give every chunk a distinct frequency by repetition: chunk i
        # appears i+1 times. Identical aux and target.
        sequence = [
            value for index, value in enumerate(sorted(set(stream))) for _ in range(index + 1)
        ]
        if not sequence:
            return
        encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
            _series(sequence, sequence)
        )
        report = AttackEvaluator(encrypted).run(
            BasicAttack(), auxiliary=0, target=1
        )
        assert report.inference_rate == 1.0
