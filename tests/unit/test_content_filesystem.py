"""Tests for the content-level file tree and mutation model."""

import random

import pytest

from repro.chunking import ChunkerSpec, GearChunker
from repro.common.errors import ConfigurationError
from repro.datasets.filesystem import (
    ContentFile,
    ContentTree,
    build_tree,
    deterministic_bytes,
)
from repro.datasets.mutate import evolve_tree, mutate_file


class TestDeterministicBytes:
    def test_reproducible(self):
        assert deterministic_bytes(1, "x", 100) == deterministic_bytes(1, "x", 100)

    def test_label_separation(self):
        assert deterministic_bytes(1, "x", 100) != deterministic_bytes(1, "y", 100)

    def test_length(self):
        for length in (0, 1, 63, 64, 65, 1000):
            assert len(deterministic_bytes(1, "x", length)) == length

    def test_negative_length(self):
        with pytest.raises(ConfigurationError):
            deterministic_bytes(1, "x", -1)


class TestBuildTree:
    def test_structure(self):
        tree = build_tree(seed=1, num_files=10, duplicate_assets=2, asset_copies=3)
        assert len(tree) == 10 + 2 * 3
        assert tree.total_bytes() > 0

    def test_duplicate_assets_identical(self):
        tree = build_tree(seed=2, num_files=4, duplicate_assets=1, asset_copies=3)
        copies = [
            tree.get(path)
            for path in tree.paths()
            if "asset00" in path
        ]
        assert len(copies) == 3
        assert copies[0].data == copies[1].data == copies[2].data

    def test_deterministic(self):
        a = build_tree(seed=3, num_files=5)
        b = build_tree(seed=3, num_files=5)
        assert a.concatenated() == b.concatenated()

    def test_tree_operations(self):
        tree = ContentTree()
        tree.add(ContentFile(path="p", data=b"data"))
        assert tree.get("p").size == 4
        tree.remove("p")
        assert len(tree) == 0


class TestMutateFile:
    def test_churn_fraction(self):
        file = ContentFile(path="f", data=deterministic_bytes(4, "f", 100_000))
        edited = mutate_file(
            file, random.Random(1), churn=0.05, insert_probability=0.0
        )
        changed = sum(1 for a, b in zip(file.data, edited.data) if a != b)
        assert 0 < changed < 0.12 * len(file.data)

    def test_zero_churn_identity(self):
        file = ContentFile(path="f", data=b"hello world")
        edited = mutate_file(file, random.Random(2), churn=0.0)
        assert edited.data == file.data

    def test_insertions_grow_file(self):
        file = ContentFile(path="f", data=deterministic_bytes(5, "f", 50_000))
        rng = random.Random(3)
        grew = False
        for _ in range(20):
            edited = mutate_file(file, rng, churn=0.05, insert_probability=1.0)
            if len(edited.data) > len(file.data):
                grew = True
                break
        assert grew

    def test_invalid_churn(self):
        with pytest.raises(ConfigurationError):
            mutate_file(ContentFile("f", b"x"), random.Random(0), churn=2.0)

    def test_edit_preserves_most_chunks(self):
        """Clustered edits + CDC = chunk locality at the content level."""
        chunker = GearChunker(ChunkerSpec(min_size=512, avg_size=2048, max_size=8192))
        file = ContentFile(path="f", data=deterministic_bytes(6, "f", 200_000))
        edited = mutate_file(file, random.Random(4), churn=0.02)
        before = {c.data for c in chunker.split(file.data)}
        after = {c.data for c in chunker.split(edited.data)}
        assert len(before & after) / len(before) > 0.6


class TestEvolveTree:
    def test_evolution_preserves_unmodified_files(self):
        tree = build_tree(seed=7, num_files=10)
        evolved = evolve_tree(tree, seed=7, generation=1, modify_fraction=0.2)
        same = sum(
            1
            for path in tree.paths()
            if path in evolved.files and evolved.get(path).data == tree.get(path).data
        )
        assert same >= 0.6 * len(tree)

    def test_adds_new_files(self):
        tree = build_tree(seed=8, num_files=5)
        evolved = evolve_tree(tree, seed=8, generation=1, add_files=2)
        assert len(evolved) == len(tree) + 2

    def test_original_untouched(self):
        tree = build_tree(seed=9, num_files=5)
        snapshot = {path: tree.get(path).data for path in tree.paths()}
        evolve_tree(tree, seed=9, generation=1)
        assert {path: tree.get(path).data for path in tree.paths()} == snapshot

    def test_deterministic(self):
        tree = build_tree(seed=10, num_files=5)
        a = evolve_tree(tree, seed=10, generation=1)
        b = evolve_tree(tree, seed=10, generation=1)
        assert a.concatenated() == b.concatenated()
