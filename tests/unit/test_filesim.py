"""Tests for the fingerprint-level file simulation."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.chunkspace import ChunkSpace, PopularPool
from repro.datasets.filesim import (
    FileMutator,
    SimFile,
    SimFileSystem,
    TemplateLibrary,
    snapshot,
)


def make_mutator(seed=0, popular=False):
    space = ChunkSpace(f"filesim-{seed}")
    pool = None
    rate = 0.0
    if popular:
        pool = PopularPool.build(space, random.Random(seed), num_runs=10)
        rate = 0.1
    return FileMutator(space, pool, rate), space


class TestSimFileSystem:
    def test_add_get_remove(self):
        fs = SimFileSystem()
        fs.add(SimFile(path="a", chunks=[1]))
        assert "a" in fs
        assert fs.get("a").chunks == [1]
        fs.remove("a")
        assert "a" not in fs

    def test_duplicate_path_rejected(self):
        fs = SimFileSystem()
        fs.add(SimFile(path="a"))
        with pytest.raises(ConfigurationError):
            fs.add(SimFile(path="a"))

    def test_paths_sorted(self):
        fs = SimFileSystem()
        for path in ("c", "a", "b"):
            fs.add(SimFile(path=path))
        assert fs.paths() == ["a", "b", "c"]

    def test_total_chunks(self):
        fs = SimFileSystem()
        fs.add(SimFile(path="a", chunks=[1, 2]))
        fs.add(SimFile(path="b", chunks=[3]))
        assert fs.total_chunks() == 3


class TestFileMutator:
    def test_create_file_length(self):
        mutator, _ = make_mutator()
        file = mutator.create_file("f", random.Random(1), 20)
        assert len(file) >= 20

    def test_modify_rewrites_clustered_region(self):
        mutator, _ = make_mutator()
        file = SimFile(path="f", chunks=list(range(1000, 1100)))
        before = list(file.chunks)
        rewritten = mutator.modify_file(
            file, random.Random(2), churn=0.2, max_regions=1,
            resize_probability=0.0,
        )
        assert rewritten > 0
        changed = [i for i, (a, b) in enumerate(zip(before, file.chunks)) if a != b]
        # single region -> changed indices are contiguous
        assert changed == list(range(changed[0], changed[-1] + 1))
        # roughly 20% churn
        assert 10 <= len(changed) <= 30

    def test_modify_zero_churn_noop(self):
        mutator, _ = make_mutator()
        file = SimFile(path="f", chunks=[1, 2, 3])
        assert mutator.modify_file(file, random.Random(3), churn=0.0) == 0
        assert file.chunks == [1, 2, 3]

    def test_modify_invalid_churn(self):
        mutator, _ = make_mutator()
        with pytest.raises(ConfigurationError):
            mutator.modify_file(SimFile("f", [1]), random.Random(0), churn=2.0)

    def test_popular_rate_requires_pool(self):
        space = ChunkSpace("x")
        with pytest.raises(ConfigurationError):
            FileMutator(space, None, 0.5)

    def test_popular_injection_rate(self):
        mutator, space = make_mutator(popular=True)
        rng = random.Random(4)
        chunks = mutator.make_chunks(rng, 5000)
        pool_ids = mutator.popular_pool.all_chunk_ids()
        popular_fraction = sum(1 for c in chunks if c in pool_ids) / len(chunks)
        assert 0.05 < popular_fraction < 0.2


class TestTemplateLibrary:
    def test_instantiate_copies_chunks(self):
        mutator, _ = make_mutator()
        library = TemplateLibrary(
            mutator, random.Random(5), num_templates=5, mean_chunks=10
        )
        a = library.instantiate("a", random.Random(6))
        b = library.instantiate("b", random.Random(6))
        assert a.chunks == b.chunks
        assert a.chunks is not b.chunks  # independent copies

    def test_lengths_bounded(self):
        mutator, _ = make_mutator()
        library = TemplateLibrary(
            mutator, random.Random(7), num_templates=50, mean_chunks=10,
            max_length_factor=4,
        )
        for template in library.templates:
            assert 2 <= len(template) <= 10 * 4 + 8  # make_chunks may overshoot


class TestSnapshot:
    def _fs(self, space):
        fs = SimFileSystem()
        fs.add(SimFile(path="a", chunks=space.allocate_many(5)))
        fs.add(SimFile(path="b", chunks=space.allocate_many(5)))
        fs.add(SimFile(path="c", chunks=space.allocate_many(5)))
        return fs

    def test_stable_order(self):
        space = ChunkSpace("snap")
        fs = self._fs(space)
        first = snapshot(fs, space, "s1")
        second = snapshot(fs, space, "s2")
        assert first.fingerprints == second.fingerprints

    def test_shuffle_requires_rng(self):
        space = ChunkSpace("snap")
        fs = self._fs(space)
        with pytest.raises(ConfigurationError):
            snapshot(fs, space, "s", shuffle_order=True)

    def test_scan_disorder_moves_some_files(self):
        space = ChunkSpace("snap2")
        fs = SimFileSystem()
        for index in range(20):
            fs.add(SimFile(path=f"f{index:02d}", chunks=space.allocate_many(3)))
        stable = snapshot(fs, space, "s")
        disordered = snapshot(
            fs, space, "s", rng=random.Random(8), scan_disorder=0.3
        )
        assert sorted(stable.fingerprints) == sorted(disordered.fingerprints)
        assert stable.fingerprints != disordered.fingerprints

    def test_scan_disorder_validation(self):
        space = ChunkSpace("snap")
        fs = self._fs(space)
        with pytest.raises(ConfigurationError):
            snapshot(fs, space, "s", scan_disorder=2.0)
        with pytest.raises(ConfigurationError):
            snapshot(fs, space, "s", scan_disorder=0.5)  # no rng

    def test_sizes_parallel_to_fingerprints(self):
        space = ChunkSpace("snap")
        fs = self._fs(space)
        backup = snapshot(fs, space, "s")
        assert len(backup.fingerprints) == len(backup.sizes) == 15
