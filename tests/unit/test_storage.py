"""Tests for the storage substrate: containers, index, DDFS engine, recipes."""

import pytest

from repro.common.errors import ConfigurationError, IntegrityError, StorageError
from repro.datasets.model import Backup
from repro.storage.container import ContainerStore
from repro.storage.ddfs import DDFSEngine
from repro.storage.fingerprint_index import OnDiskFingerprintIndex
from repro.storage.metrics import MetadataAccessStats
from repro.storage.recipes import FileRecipe


def backup(tokens, sizes=None, label="b"):
    tokens = [t.encode() for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label=label, fingerprints=tokens, sizes=sizes)


class TestContainerStore:
    def test_flush_on_capacity(self):
        store = ContainerStore(container_size=10_000)
        assert store.append(b"a", 4096) is None
        assert store.append(b"b", 4096) is None
        sealed = store.append(b"c", 4096)  # 12288 >= 10000
        assert sealed == 0
        assert store.num_containers == 1
        assert store.get(0).num_chunks == 3

    def test_manual_flush(self):
        store = ContainerStore(container_size=10_000)
        store.append(b"a", 100)
        sealed = store.flush()
        assert sealed == 0
        assert store.flush() is None  # nothing pending

    def test_open_buffer_membership(self):
        store = ContainerStore(container_size=10_000)
        store.append(b"a", 100)
        assert store.in_open_buffer(b"a")
        store.flush()
        assert not store.in_open_buffer(b"a")

    def test_payload_round_trip(self):
        store = ContainerStore(container_size=1000, keep_payload=True)
        store.append(b"a", 3, b"AAA")
        store.append(b"b", 3, b"BBB")
        store.flush()
        container = store.get(0)
        assert container.read_chunk(b"a") == b"AAA"
        assert container.read_chunk(b"b") == b"BBB"

    def test_payload_required_when_keeping(self):
        store = ContainerStore(keep_payload=True)
        with pytest.raises(StorageError):
            store.append(b"a", 3)

    def test_payload_size_mismatch(self):
        store = ContainerStore(keep_payload=True)
        with pytest.raises(StorageError):
            store.append(b"a", 5, b"AAA")

    def test_missing_chunk_read(self):
        store = ContainerStore(keep_payload=True)
        store.append(b"a", 1, b"A")
        store.flush()
        with pytest.raises(StorageError):
            store.get(0).read_chunk(b"nope")

    def test_unknown_container(self):
        with pytest.raises(StorageError):
            ContainerStore().get(99)

    def test_stored_bytes(self):
        store = ContainerStore(container_size=10_000)
        store.append(b"a", 4096)
        store.append(b"b", 4096)
        assert store.stored_bytes() == 8192


class TestFingerprintIndex:
    def test_lookup_and_update(self):
        index = OnDiskFingerprintIndex()
        assert index.lookup(b"fp") is None
        index.update_batch([b"fp"], container_id=7)
        assert index.lookup(b"fp") == 7
        assert index.container_of(b"fp") == 7

    def test_metering(self):
        index = OnDiskFingerprintIndex(entry_bytes=32)
        index.lookup(b"a")
        index.lookup(b"b")
        index.update_batch([b"a", b"b", b"c"], 0)
        index.charge_loading(10)
        stats = index.take_stats()
        assert stats.index_bytes == 64
        assert stats.update_bytes == 96
        assert stats.loading_bytes == 320
        # counters reset after take_stats
        assert index.stats.total_bytes == 0

    def test_container_of_is_unmetered(self):
        index = OnDiskFingerprintIndex()
        index.update_batch([b"a"], 1)
        index.take_stats()
        index.container_of(b"a")
        assert index.stats.total_bytes == 0


class TestMetadataAccessStats:
    def test_total_and_add(self):
        a = MetadataAccessStats(update_bytes=1, index_bytes=2, loading_bytes=3)
        b = MetadataAccessStats(update_bytes=10, index_bytes=20, loading_bytes=30)
        a.add(b)
        assert a.total_bytes == 66
        assert a.breakdown() == {"update": 11, "index": 22, "loading": 33}


class TestDDFSEngine:
    def make_engine(self, cache_bytes=32 * 64, container_size=8 * 4096):
        return DDFSEngine(
            cache_budget_bytes=cache_bytes,
            bloom_capacity=10_000,
            container_size=container_size,
        )

    def test_exact_deduplication(self):
        engine = self.make_engine()
        stream = backup(["a", "b", "a", "c", "b", "a"])
        report = engine.process_backup(stream)
        assert report.unique_chunks == 3
        assert report.duplicate_chunks == 3
        assert report.total_chunks == 6
        assert report.stored_bytes == 3 * 4096

    def test_cross_backup_dedup(self):
        engine = self.make_engine()
        first = engine.process_backup(backup(["a", "b", "c"], label="b1"))
        second = engine.process_backup(backup(["a", "b", "d"], label="b2"))
        assert first.unique_chunks == 3
        assert second.unique_chunks == 1
        assert second.duplicate_chunks == 2

    def test_buffered_duplicates_not_double_stored(self):
        # duplicates arriving before the container seals
        engine = self.make_engine(container_size=100 * 4096)
        report = engine.process_backup(backup(["a", "a", "a"]))
        assert report.unique_chunks == 1

    def test_duplicate_detection_charges_loading_once_per_container(self):
        engine = self.make_engine()
        engine.process_backup(backup([f"c{i}" for i in range(8)], label="b1"))
        report = engine.process_backup(
            backup([f"c{i}" for i in range(8)], label="b2")
        )
        # First duplicate triggers S4 (one container load of 8 fps); the
        # following 7 hit the warmed cache.
        assert report.metadata.loading_bytes == 8 * 32
        assert report.cache_hits == 7

    def test_update_access_proportional_to_unique_chunks(self):
        engine = self.make_engine()
        report = engine.process_backup(
            backup([f"u{i}" for i in range(20)])
        )
        assert report.metadata.update_bytes == 20 * 32

    def test_dedup_ratio_report(self):
        engine = self.make_engine()
        report = engine.process_backup(backup(["a"] * 10))
        assert report.dedup_ratio == pytest.approx(10.0)

    def test_series_processing(self, tiny_fsl_series):
        engine = DDFSEngine(
            cache_budget_bytes=64 * 1024,
            bloom_capacity=50_000,
            container_size=64 * 4096,
        )
        reports = engine.process_series(tiny_fsl_series.backups)
        assert len(reports) == len(tiny_fsl_series)
        # deduplication exact: stored unique == series-wide unique count
        stored_unique = sum(r.unique_chunks for r in reports)
        all_unique = set()
        for b in tiny_fsl_series.backups:
            all_unique |= b.unique_fingerprints()
        assert stored_unique == len(all_unique)
        # later backups are mostly duplicates
        assert reports[-1].duplicate_chunks > reports[-1].unique_chunks

    def test_loading_dominates_with_small_cache(self, tiny_fsl_series):
        engine = DDFSEngine(
            cache_budget_bytes=32 * 64,  # tiny cache forces reloads
            bloom_capacity=50_000,
            container_size=16 * 4096,
        )
        reports = engine.process_series(tiny_fsl_series.backups)
        last = reports[-1].metadata
        assert last.loading_bytes > last.update_bytes
        assert last.loading_bytes > last.index_bytes

    def test_invalid_bloom_capacity(self):
        with pytest.raises(ConfigurationError):
            DDFSEngine(cache_budget_bytes=1024, bloom_capacity=0)


class TestFileRecipe:
    def test_seal_unseal(self):
        recipe = FileRecipe(filename="doc.txt")
        recipe.add(b"\x01" * 8, 4096)
        recipe.add(b"\x02" * 8, 100)
        sealed = recipe.seal(b"user-secret")
        restored = FileRecipe.unseal(sealed, b"user-secret")
        assert restored.filename == "doc.txt"
        assert restored.chunks == recipe.chunks
        assert restored.logical_bytes == 4196

    def test_wrong_secret(self):
        recipe = FileRecipe(filename="doc.txt")
        sealed = recipe.seal(b"alice")
        with pytest.raises(IntegrityError):
            FileRecipe.unseal(sealed, b"bob")

    def test_len(self):
        recipe = FileRecipe(filename="f")
        assert len(recipe) == 0
        recipe.add(b"t", 1)
        assert len(recipe) == 1
