"""Tests for the three dataset generators: workload-shape guarantees."""

import pytest

from repro.common.errors import ConfigurationError
from repro.datasets.fsl import FSLConfig, FSLDatasetGenerator
from repro.datasets.stats import (
    adjacency_preservation,
    content_overlap,
    frequency_cdf,
    series_frequencies,
)
from repro.datasets.synthetic import SyntheticConfig, SyntheticDatasetGenerator
from repro.datasets.vm import VMConfig, VMDatasetGenerator


class TestFSLGenerator:
    def test_backup_count_and_labels(self, tiny_fsl_series):
        assert len(tiny_fsl_series) == 4
        assert tiny_fsl_series.backups[0].label == "Jan 22"
        assert tiny_fsl_series.chunking == "variable"

    def test_deterministic(self):
        config = FSLConfig(num_users=1, num_backups=2, files_per_user=10)
        a = FSLDatasetGenerator(seed=1, config=config).generate()
        b = FSLDatasetGenerator(seed=1, config=config).generate()
        assert a.backups[1].fingerprints == b.backups[1].fingerprints

    def test_seed_changes_content(self):
        config = FSLConfig(num_users=1, num_backups=1, files_per_user=10)
        a = FSLDatasetGenerator(seed=1, config=config).generate()
        b = FSLDatasetGenerator(seed=2, config=config).generate()
        assert a.backups[0].fingerprints != b.backups[0].fingerprints

    def test_temporal_redundancy(self, tiny_fsl_series):
        latest = tiny_fsl_series.backups[-1]
        recent = content_overlap(tiny_fsl_series.backups[-2], latest)
        old = content_overlap(tiny_fsl_series.backups[0], latest)
        assert recent > old > 0.0

    def test_chunk_locality(self, tiny_fsl_series):
        preserved = adjacency_preservation(
            tiny_fsl_series.backups[-2], tiny_fsl_series.backups[-1]
        )
        assert preserved > 0.5

    def test_frequency_skew(self, tiny_fsl_series):
        cdf = frequency_cdf(series_frequencies(tiny_fsl_series))
        assert cdf.fraction_below(100) > 0.95
        assert cdf.max_frequency > 10 * cdf.median_frequency

    def test_dedup_ratio_band(self, tiny_fsl_series):
        assert 1.5 < tiny_fsl_series.dedup_ratio() < 20

    def test_fingerprints_are_48_bit(self, tiny_fsl_series):
        assert len(tiny_fsl_series.backups[0].fingerprints[0]) == 6

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            FSLConfig(num_users=0)
        with pytest.raises(ConfigurationError):
            FSLConfig(common_file_probability=1.5)


class TestVMGenerator:
    def test_fixed_size_chunks(self, tiny_vm_series):
        assert tiny_vm_series.chunking == "fixed"
        sizes = set(tiny_vm_series.backups[0].sizes)
        assert sizes == {4096}

    def test_high_cross_vm_redundancy(self, tiny_vm_series):
        first = tiny_vm_series.backups[0]
        # intra-backup dedup alone shrinks the first backup a lot (shared
        # base image across VMs)
        assert len(first.unique_fingerprints()) < 0.6 * len(first)

    def test_churn_window_lowers_overlap(self):
        config = VMConfig(
            num_vms=3,
            num_backups=8,
            base_image_chunks=300,
            user_region_chunks=400,
            heavy_weeks=(3, 4),
            quiet_weeks=(0, 1),
            popular_pool_size=10,
        )
        series = VMDatasetGenerator(seed=3, config=config).generate()
        quiet = content_overlap(series.backups[0], series.backups[1])
        heavy = content_overlap(series.backups[3], series.backups[4])
        assert heavy < quiet

    def test_churn_schedule(self):
        config = VMConfig(quiet_weeks=(0,), heavy_weeks=(2,))
        assert config.churn_for_transition(0) == config.quiet_churn
        assert config.churn_for_transition(2) == config.heavy_churn
        assert config.churn_for_transition(5) == config.weekly_churn

    def test_invalid_heavy_weeks(self):
        with pytest.raises(ConfigurationError):
            VMConfig(num_backups=5, heavy_weeks=(9,))

    def test_deterministic(self):
        config = VMConfig(num_vms=2, num_backups=3, base_image_chunks=100,
                          user_region_chunks=50, heavy_weeks=(1,), quiet_weeks=(0,))
        a = VMDatasetGenerator(seed=5, config=config).generate()
        b = VMDatasetGenerator(seed=5, config=config).generate()
        assert a.backups[-1].fingerprints == b.backups[-1].fingerprints


class TestSyntheticGenerator:
    def test_snapshot_count_includes_initial(self, tiny_synthetic_series):
        # num_snapshots=4 -> 5 backups (index 0 is the public image)
        assert len(tiny_synthetic_series) == 5
        assert tiny_synthetic_series.backups[0].label == "snapshot-00"

    def test_small_per_snapshot_churn(self, tiny_synthetic_series):
        # 2% files modified + ~1% new data: adjacent snapshots overlap a lot
        overlap = content_overlap(
            tiny_synthetic_series.backups[-2], tiny_synthetic_series.backups[-1]
        )
        assert overlap > 0.9

    def test_snapshots_grow(self, tiny_synthetic_series):
        sizes = [len(b) for b in tiny_synthetic_series.backups]
        assert sizes[-1] > sizes[0]

    def test_high_dedup_ratio(self, tiny_synthetic_series):
        assert tiny_synthetic_series.dedup_ratio() > 3.0

    def test_deterministic(self):
        config = SyntheticConfig(num_files=20, num_snapshots=2, num_templates=5)
        a = SyntheticDatasetGenerator(seed=9, config=config).generate()
        b = SyntheticDatasetGenerator(seed=9, config=config).generate()
        assert a.backups[-1].fingerprints == b.backups[-1].fingerprints

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_files=0)
