"""Ablation: restore-path read amplification under scrambling (§6.2).

Paper claim: because scrambling reorders chunks only within segments and
segments are smaller than containers (2 MB vs 4 MB), the chunk layout
across containers barely changes, so sequential restores read roughly the
same number of containers with or without the defense. This experiment
ingests MLE-encrypted and combined-encrypted streams into DDFS engines and
replays a file-recipe-order restore of the latest backup, counting
container reads with a small open-container cache.
"""

from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import scaled_segmentation, series_by_name
from repro.common.units import MiB
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.storage.ddfs import DDFSEngine
from repro.storage.restore_sim import simulate_restore

from benchmarks.conftest import run_figure


def _driver() -> FigureResult:
    result = FigureResult(
        figure="Ablation restore locality",
        title="Sequential restore of the latest backup: container reads",
        columns=[
            "scheme",
            "chunks",
            "container_reads",
            "container_switches",
            "reads_per_chunk",
        ],
    )
    series = series_by_name("storage-fsl")
    spec = scaled_segmentation(series)
    for scheme in (DefenseScheme.MLE, DefenseScheme.COMBINED):
        pipeline = DefensePipeline(scheme, segmentation=spec, seed=7)
        encrypted = pipeline.encrypt_series(series)
        engine = DDFSEngine(
            cache_budget_bytes=4 * MiB,
            bloom_capacity=200_000,
            container_size=4 * MiB,
        )
        engine.process_series([b.ciphertext for b in encrypted.backups])
        report = simulate_restore(
            engine, encrypted.backups[-1].logical_ciphertext()
        )
        result.add_row(
            scheme.value,
            report.chunks_read,
            report.container_reads,
            report.container_switches,
            round(report.reads_per_mib_factor, 6),
        )
    return result


def bench_ablation_restore_locality(benchmark, results_dir):
    result = run_figure(benchmark, _driver, results_dir)
    reads = dict(zip(result.column("scheme"), result.column("container_reads")))
    # The combined scheme's restore reads at most ~2x the containers MLE
    # does (the paper argues the impact is limited; perfectly zero impact
    # is not expected because MinHash variants add containers).
    assert reads["combined"] <= 2.5 * reads["mle"], reads
    # And restores are far from pathological: orders of magnitude fewer
    # container reads than chunks.
    chunks = result.column("chunks")[0]
    assert reads["combined"] < chunks / 20, reads
