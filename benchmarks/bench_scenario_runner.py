"""Scenario-runner bench: process fan-out speedup + cache-hit reruns.

Runs one multi-cell attack figure three ways and verifies the engine's
contract:

1. **serial** (``jobs=1``) — the baseline;
2. **parallel** (``--jobs N``, default 4) — must produce byte-identical
   rows, and on a machine with >= 4 CPUs must be >= 2x faster (the
   assertion scales down gracefully on smaller machines and is skipped on
   a single core, where a wall-clock speedup is physically impossible);
3. **cached rerun** — a fresh cache directory is populated once, then the
   rerun must execute zero cells and still produce identical rows.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scenario_runner.py
    PYTHONPATH=src python benchmarks/bench_scenario_runner.py --figure 5 --full --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace

from repro.analysis.figures import FIGURE_SCENARIOS
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Scenario

# Attack figures with enough cells to be worth fanning out.
SWEEPABLE = ("4", "5", "6", "7", "8", "9", "10")

# Datasets kept in the default (non --full) run: the cheap ones, so the
# bench finishes in tens of seconds while still spanning many cells.
QUICK_DATASETS = ("fsl", "synthetic")


def quick_scenario(scenario: Scenario) -> Scenario:
    """Restrict a figure scenario to the quick datasets."""
    specs = tuple(
        replace(spec, datasets=tuple(
            name for name in spec.datasets if name in QUICK_DATASETS
        ))
        for spec in scenario.specs
    )
    specs = tuple(spec for spec in specs if spec.datasets)
    return replace(scenario, specs=specs)


def warm_scenario(scenario: Scenario) -> float:
    """Generate and encrypt every workload the scenario touches, in the
    parent process (same warming the runner does before forking workers).

    Serial execution and forked workers then both start from warm memoised
    caches, so the timed comparison measures cell compute scaling — not
    which side happened to pay dataset generation first.
    """
    from repro.scenarios.cells import warm_workloads

    start = time.perf_counter()
    warm_workloads(scenario.cells())
    return time.perf_counter() - start


def timed_run(scenario: Scenario, jobs: int, cache=None):
    start = time.perf_counter()
    run = run_scenario(scenario, jobs=jobs, cache=cache)
    return run, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=SWEEPABLE, default="5")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the figure's full dataset grid (default: quick datasets)",
    )
    args = parser.parse_args(argv)

    scenario = FIGURE_SCENARIOS[args.figure]()
    if not args.full:
        scenario = quick_scenario(scenario)
    cells = scenario.cells()
    cpus = os.cpu_count() or 1
    print(
        f"figure {args.figure}: {len(cells)} cells, "
        f"jobs={args.jobs}, cpus={cpus}"
    )

    warm_seconds = warm_scenario(scenario)
    print(f"workload warmup: {warm_seconds:.2f}s (untimed below)")

    serial, serial_seconds = timed_run(scenario, jobs=1)
    print(f"serial      : {serial_seconds:8.2f}s  ({len(serial.rows)} rows)")

    parallel, parallel_seconds = timed_run(scenario, jobs=args.jobs)
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print(f"jobs={args.jobs:<2}     : {parallel_seconds:8.2f}s  ({speedup:.2f}x)")

    assert json.dumps(parallel.rows) == json.dumps(serial.rows), (
        "parallel rows differ from serial rows"
    )
    print("parallel rows byte-identical to serial: ok")

    if cpus >= 4 and args.jobs >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at jobs={args.jobs} on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )
        print("speedup >= 2x: ok")
    elif cpus >= 2:
        assert speedup >= 1.2, (
            f"expected >=1.2x speedup on {cpus} CPUs, got {speedup:.2f}x"
        )
        print(f"speedup >= 1.2x on {cpus} CPUs: ok")
    else:
        print("speedup assertion skipped: single CPU")

    with tempfile.TemporaryDirectory(prefix="scenario-cache-") as cache_dir:
        populate, populate_seconds = timed_run(
            scenario, jobs=1, cache=cache_dir
        )
        assert populate.stats.cache_hits == 0
        rerun, rerun_seconds = timed_run(scenario, jobs=1, cache=cache_dir)
        assert rerun.stats.executed == 0, rerun.stats
        assert rerun.stats.cache_hits == rerun.stats.total == len(cells), (
            rerun.stats
        )
        assert json.dumps(rerun.rows) == json.dumps(serial.rows)
        print(
            f"cache       : populate {populate_seconds:.2f}s, "
            f"rerun {rerun_seconds:.2f}s "
            f"({rerun.stats.cache_hits}/{rerun.stats.total} cells skipped)"
        )
    print("cache-hit rerun skips all completed cells: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
