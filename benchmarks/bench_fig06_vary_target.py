"""Figure 6: ciphertext-only inference rate vs target backup distance.

Paper claims (§5.3.2): with the earliest backup as auxiliary information,
nearby targets are inferred at high rates (FSL Feb: 26.4 % / 30.0 %) and
the rate decays as the target drifts away (FSL May: 7.7 % / 22.1 %); the
basic attack stays ineffective throughout; on VM the rate collapses for
targets past the churn window.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig6_vary_target


def bench_fig06_vary_target(benchmark, results_dir):
    result = run_figure(benchmark, fig6_vary_target, results_dir)

    for dataset in ("fsl", "synthetic", "vm"):
        basic = series_of(result, dataset=dataset, attack="basic")
        assert max(basic) < 0.01, (dataset, basic)

    # Decay with target distance for the strongest attacks on FSL.
    for attack, floor in (("locality", 0.04), ("advanced", 0.15)):
        series = series_of(result, dataset="fsl", attack=attack)
        assert series[0] > series[-1], (attack, series)
        assert series[0] > floor, (attack, series)

    # VM: targets beyond the churn window are nearly out of reach of the
    # week-1 auxiliary (paper: ~0.1% after week 8), while early targets
    # are inferable.
    vm = series_of(result, dataset="vm", attack="locality")
    assert vm[0] > 0.05
    assert vm[-1] < 0.25 * vm[0]
