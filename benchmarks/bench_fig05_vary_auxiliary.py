"""Figure 5: ciphertext-only inference rate vs auxiliary backup recency.

Paper claims (§5.3.2):
* the basic attack is ineffective on every dataset (≤ 0.03 %-ish rates);
* the locality-based and advanced attacks are orders of magnitude stronger;
* more recent auxiliary backups give higher rates (FSL: up to 23.2 % /
  33.6 % with the most recent auxiliary);
* the advanced attack dominates the locality-based attack on variable-size
  datasets; on VM they coincide (fixed-size chunks) and the early-term
  backups (before the churn window) are nearly useless as auxiliaries.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig5_vary_auxiliary


def bench_fig05_vary_auxiliary(benchmark, results_dir):
    result = run_figure(benchmark, fig5_vary_auxiliary, results_dir)

    for dataset in ("fsl", "synthetic", "vm"):
        basic = series_of(result, dataset=dataset, attack="basic")
        locality = series_of(result, dataset=dataset, attack="locality")
        assert max(basic) < 0.01, (dataset, basic)
        assert max(locality) > 10 * max(basic), (dataset, locality)

    # Recency: most recent auxiliary beats the oldest for the strongest
    # attack on each dataset.
    fsl_advanced = series_of(result, dataset="fsl", attack="advanced")
    assert fsl_advanced[-1] > fsl_advanced[0]
    assert fsl_advanced[-1] > 0.15

    fsl_locality = series_of(result, dataset="fsl", attack="locality")
    assert fsl_locality[-1] > 0.10  # paper: 23.2%

    # Advanced >= locality with the most recent auxiliary (variable-size).
    for dataset in ("fsl", "synthetic"):
        locality = series_of(result, dataset=dataset, attack="locality")
        advanced = series_of(result, dataset=dataset, attack="advanced")
        assert advanced[-1] >= locality[-1], dataset

    # VM: pre-churn-window auxiliaries are near-useless, recent ones work
    # (paper: <0.005% for weeks 1-8, rising to 14.5% at week 12).
    vm_locality = series_of(result, dataset="vm", attack="locality")
    assert vm_locality[-1] > 0.08
    assert min(vm_locality[:4]) < 0.25 * vm_locality[-1]
