"""Trace-scale columnar COUNT smoke bench: identity gate + throughput.

CI-sized slice of the full ``freqdedup bench`` columnar section: generate
a ~10^6-chunk stream trace in the memory-mapped columnar layout, run the
sharded parallel COUNT over it at a sweep of worker counts, and

1. **identity** — assert the COUNT digest (frequencies, sizes, both
   neighbor tables, *including iteration order*) is identical at every
   worker count and equal to the in-RAM interned COUNT of the
   materialized backup.  A non-zero exit always means an identity
   failure, never a timing threshold.
2. **throughput** — report chunks/s per worker count plus the peak RSS
   of the sharded COUNT vs the in-RAM interned COUNT, each measured in a
   forked child so the numbers are attributable.

Timing deltas vs a committed baseline are soft (printed for the log);
machine variance must not fail CI.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_columnar_scale.py
    PYTHONPATH=src python benchmarks/bench_columnar_scale.py \
        --chunks 200000 --jobs 4 --output bench-columnar.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.benchmeta import run_isolated
from repro.attacks.interning import interned_count
from repro.attacks.sharded import sharded_count
from repro.datasets.columnar import StreamConfig, ensure_stream_columnar

try:  # pytest imports this module as benchmarks.bench_columnar_scale
    from benchmarks.bench_backend_scale import count_digest
    from benchmarks.conftest import bench_envelope
except ImportError:  # standalone: benchmarks/ itself is on sys.path
    from bench_backend_scale import count_digest
    from conftest import bench_envelope

DEFAULT_CHUNKS = 1_000_000


def _digest_sharded(directory: Path, jobs: int) -> tuple[str, float]:
    """Timed sharded COUNT to rank-ready, then the (untimed) digest.

    The digest decodes every lazy table through the per-key view — far
    slower than the COUNT itself — so it stays outside the timed window;
    it is the correctness gate, not the workload.
    """
    from repro.datasets.columnar import ColumnarTrace

    trace = ColumnarTrace.open(directory)
    try:
        started = time.perf_counter()
        stats = sharded_count(trace.view(0), jobs=jobs)
        stats.left
        stats.right
        elapsed = time.perf_counter() - started
        return count_digest(stats), elapsed
    finally:
        trace.close()


def _digest_interned(directory: Path) -> tuple[str, float]:
    from repro.datasets.columnar import ColumnarTrace

    trace = ColumnarTrace.open(directory)
    try:
        backup = trace.view(0).to_backup()
        started = time.perf_counter()
        stats = interned_count(backup)
        stats.left
        stats.right
        elapsed = time.perf_counter() - started
        return count_digest(stats), elapsed
    finally:
        trace.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chunks", type=int, default=DEFAULT_CHUNKS)
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="max worker processes in the sweep (sweep = {1, .., jobs})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", metavar="FILE", help="write the result JSON to FILE"
    )
    parser.add_argument(
        "--compare",
        metavar="FILE",
        help="soft-report throughput deltas vs a baseline JSON",
    )
    args = parser.parse_args(argv)
    job_sweep = sorted({1, args.jobs})

    with tempfile.TemporaryDirectory(prefix="bench-columnar-") as tmp:
        directory = Path(tmp) / "trace"
        started = time.perf_counter()
        trace = ensure_stream_columnar(
            directory,
            StreamConfig(chunks=args.chunks, backups=1),
            seed=args.seed,
        )
        generate_s = time.perf_counter() - started
        num_unique = trace.num_unique
        trace.close()
        print(
            f"generated {args.chunks:,} chunks ({num_unique:,} unique) "
            f"in {generate_s:.2f}s -> {directory}"
        )

        # Isolated phases first: a forked child inherits the parent's RSS
        # baseline, so nothing big may be resident in the parent yet.
        rows = []
        digests = set()
        for jobs in job_sweep:
            (digest, elapsed), peak_rss = run_isolated(
                _digest_sharded, directory, jobs
            )
            digests.add(digest)
            rows.append(
                {
                    "jobs": jobs,
                    "count_seconds": elapsed,
                    "chunks_per_s": args.chunks / elapsed,
                    "peak_rss_mib": (
                        round(peak_rss / (1 << 20), 1) if peak_rss else None
                    ),
                    "digest": digest,
                }
            )
        (reference_digest, interned_seconds), interned_rss = run_isolated(
            _digest_interned, directory
        )
        digests.add(reference_digest)

    print(
        f"{'counter':<12} {'count s':>8} {'chunks/s':>12} {'rss MiB':>8}"
    )
    for row in rows:
        rss = row["peak_rss_mib"]
        print(
            f"sharded:{row['jobs']:<4} {row['count_seconds']:>8.2f} "
            f"{row['chunks_per_s']:>12,.0f} "
            f"{rss if rss is not None else '-':>8}"
        )
    interned_rss_mib = (
        round(interned_rss / (1 << 20), 1) if interned_rss else None
    )
    print(
        f"{'interned':<12} {interned_seconds:>8.2f} "
        f"{args.chunks / interned_seconds:>12,.0f} "
        f"{interned_rss_mib if interned_rss_mib is not None else '-':>8}"
    )

    identical = len(digests) == 1
    payload = {
        "env": bench_envelope(),
        "chunks": args.chunks,
        "unique": num_unique,
        "generate_seconds": round(generate_s, 4),
        "identical": identical,
        "rows": [
            {
                key: (round(value, 4) if isinstance(value, float) else value)
                for key, value in row.items()
            }
            for row in rows
        ],
        "interned": {
            "count_seconds": round(interned_seconds, 4),
            "chunks_per_s": round(args.chunks / interned_seconds, 4),
            "peak_rss_mib": interned_rss_mib,
        },
    }
    if args.compare:
        try:
            with open(args.compare, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(f"no baseline at {args.compare}; skipping comparison")
        else:
            then = max(r["chunks_per_s"] for r in baseline["rows"])
            now = max(r["chunks_per_s"] for r in rows)
            delta = (now - then) / then * 100 if then else 0.0
            print(
                f"vs baseline best chunks/s: {then:,.0f} -> {now:,.0f} "
                f"({delta:+.1f}%)  [soft: timings inform, never fail]"
            )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.output}")
    if not identical:
        print(
            "FAIL: sharded COUNT digest diverged across worker counts "
            "or from the interned reference!"
        )
        return 1
    print(
        f"COUNT digest identical at jobs={job_sweep} and vs the in-RAM "
        f"interned COUNT: {reference_digest[:16]}…"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
