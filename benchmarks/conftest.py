"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_figNN_*`` module regenerates one evaluation figure of the
paper: it times the full experiment via pytest-benchmark (one round — these
are experiments, not microbenchmarks), writes the reproduced series under
``results/``, and asserts the figure's qualitative shape (see DESIGN.md §4).

Run with::

    pytest benchmarks/ --benchmark-only

The figure drivers run through the scenario engine (``repro.scenarios``),
whose output is byte-identical at any worker count; set
``REPRO_FIGURE_JOBS=4`` to fan the figure cells out across processes and
``REPRO_FIGURE_CACHE=DIR`` to skip cells already completed by an earlier
(possibly interrupted) bench run.  Both knobs only apply to drivers that
accept them — the ablation benches keep their bespoke drivers.
"""

from __future__ import annotations

import inspect
import os
from pathlib import Path

import pytest

from repro.analysis.reporting import FigureResult, save_result

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_envelope() -> dict:
    """The shared ``env`` metadata block every committed ``BENCH_*.json``
    embeds (schema version, interpreter/numpy versions, CPU count,
    timestamp) — one envelope, so baselines stay machine-comparable."""
    from repro.analysis.benchmeta import metadata_envelope

    return metadata_envelope()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def _engine_kwargs(driver) -> dict:
    """jobs/cache for scenario-engine drivers, from the environment."""
    parameters = inspect.signature(driver).parameters
    kwargs: dict = {}
    jobs = int(os.environ.get("REPRO_FIGURE_JOBS", "1"))
    if jobs > 1 and "jobs" in parameters:
        kwargs["jobs"] = jobs
    cache = os.environ.get("REPRO_FIGURE_CACHE")
    if cache and "cache" in parameters:
        kwargs["cache"] = cache
    return kwargs


def run_figure(benchmark, driver, results_dir: Path, **kwargs) -> FigureResult:
    """Run a figure driver once under the benchmark timer and persist it."""
    kwargs = {**_engine_kwargs(driver), **kwargs}
    result = benchmark.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1
    )
    save_result(result, results_dir)
    return result


def series_of(result: FigureResult, **filters) -> list:
    """Extract one plotted series: filter rows by column values, return the
    last column's values in row order."""
    indices = {name: result.columns.index(name) for name in filters}
    value_index = len(result.columns) - 1
    return [
        row[value_index]
        for row in result.rows
        if all(row[indices[name]] == value for name, value in filters.items())
    ]
