"""Figure 7: sliding-window attacks (auxiliary backup t, target t+s).

Paper claims (§5.3.2):
* the advanced attack beats the locality-based attack at every window on
  the variable-size datasets (FSL s=1 averages: 24.3 % vs 30.4 %);
* smaller shifts are easier (s=1 ≥ s=2 on average);
* the VM series fluctuates: windows inside the heavy-churn weeks collapse
  (paper: < 0.6 %) while quiet windows reach > 20 %.
"""

from statistics import mean

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig7_sliding_window


def bench_fig07_sliding_window(benchmark, results_dir):
    result = run_figure(benchmark, fig7_sliding_window, results_dir)

    for dataset in ("fsl", "synthetic"):
        loc_s1 = series_of(result, dataset=dataset, attack="locality", s=1)
        adv_s1 = series_of(result, dataset=dataset, attack="advanced", s=1)
        adv_s2 = series_of(result, dataset=dataset, attack="advanced", s=2)
        assert mean(adv_s1) >= mean(loc_s1), dataset
        assert mean(adv_s1) >= mean(adv_s2) * 0.9, dataset
        assert mean(adv_s1) > 0.1, dataset

    vm_s1 = series_of(result, dataset="vm", attack="locality", s=1)
    # Fluctuation: the best quiet window is much stronger than the worst
    # churn-week window.
    assert max(vm_s1) > 0.15
    assert min(vm_s1) < 0.3 * max(vm_s1)
    # Wider windows are weaker on average.
    vm_s3 = series_of(result, dataset="vm", attack="locality", s=3)
    assert mean(vm_s3) <= mean(vm_s1)
