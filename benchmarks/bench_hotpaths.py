"""Hot-path micro-benchmarks: chunking, COUNT, and service ingest.

Thin wrapper over :mod:`repro.analysis.hotpaths` (the logic lives in the
package so ``freqdedup bench`` shares it). Times each optimized hot path
against its byte-at-a-time reference on pinned seeded workloads, asserts
byte-identical output, and writes ``BENCH_hotpaths.json`` — the committed
perf baseline future PRs diff against.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick --compare BENCH_hotpaths.json
"""

from __future__ import annotations

import sys

from repro.analysis.hotpaths import main

if __name__ == "__main__":
    sys.exit(main())
