"""Backend scaling bench: memory vs SQLite vs sharded vs columnar COUNT.

Ingests a skewed synthetic trace (default 10^5 chunk records; use
``--chunks 1000000`` or ``BENCH_BACKEND_CHUNKS=1000000`` for paper-scale)
through the streaming COUNT on each backend — plus the memory-mapped
columnar layout counted by the sharded parallel COUNT — then measures
random lookup throughput against the resulting stores. Before reporting,
it verifies the tentpole invariant: the COUNT digest — frequencies, sizes,
and both neighbor tables, *including iteration order* — is byte-identical
across all backends and equal to the single-pass in-memory COUNT.

Each backend runs in a forked child so its peak RSS is attributable to
that backend alone; ``--output`` writes the rows (with the shared ``env``
metadata envelope) to a committed baseline JSON.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backend_scale.py [--chunks N]

or under pytest-benchmark like the other micro benches.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import struct
import tempfile
import time
from pathlib import Path

from repro.attacks.frequency import count_with_neighbors
from repro.attacks.streaming import CountStores, StreamingCount
from repro.datasets.model import Backup

try:  # pytest imports this module as benchmarks.bench_backend_scale
    from benchmarks.conftest import bench_envelope
except ImportError:  # standalone: benchmarks/ itself is on sys.path
    from conftest import bench_envelope

DEFAULT_CHUNKS = int(os.environ.get("BENCH_BACKEND_CHUNKS", 100_000))
DEFAULT_UNIQUE_FRACTION = 0.2
DEFAULT_LOOKUPS = 20_000
BACKENDS = ("memory", "sqlite", "sharded:4")

_PAIR = struct.Struct(">8sQ")


def synthetic_trace(
    num_chunks: int = DEFAULT_CHUNKS,
    unique_fraction: float = DEFAULT_UNIQUE_FRACTION,
    seed: int = 11,
) -> Backup:
    """A skewed logical chunk stream (few hot chunks, long cold tail)."""
    rng = random.Random(seed)
    num_unique = max(1, int(num_chunks * unique_fraction))
    pool = [rng.randbytes(8) for _ in range(num_unique)]
    size_of = {fp: rng.randrange(2048, 16384) for fp in pool}
    fingerprints = [
        pool[min(int(rng.random() ** 3 * num_unique), num_unique - 1)]
        for _ in range(num_chunks)
    ]
    return Backup(
        label=f"bench-{num_chunks}",
        fingerprints=fingerprints,
        sizes=[size_of[fp] for fp in fingerprints],
    )


def count_digest(stats) -> str:
    """Canonical digest of a COUNT result, sensitive to iteration order.

    Works for both :class:`~repro.attacks.frequency.ChunkStats` (dict
    tables) and :class:`~repro.attacks.streaming.BackendChunkStats`
    (backend tables): equal digests mean byte-identical attack input.
    """
    digest = hashlib.sha256()
    for fingerprint, frequency in stats.frequencies.items():
        digest.update(_PAIR.pack(fingerprint, frequency))
        digest.update(_PAIR.pack(fingerprint, stats.sizes[fingerprint]))
        for side in (stats.left, stats.right):
            table = side.get(fingerprint) or {}
            for neighbor, count in table.items():
                digest.update(_PAIR.pack(neighbor, count))
    return digest.hexdigest()


def open_stores(spec: str, directory: Path | None) -> CountStores:
    if directory is None:
        return CountStores.in_memory()
    return CountStores.open(directory, spec)


def run_backend(
    spec: str,
    backup: Backup,
    num_lookups: int,
    directory: Path | None,
    seed: int = 5,
) -> dict:
    """Ingest + lookup one backend; returns throughput numbers and digest."""
    stores = open_stores(spec, directory)
    counter = StreamingCount(stores)

    started = time.perf_counter()
    counter.ingest_backup(backup)
    stats = counter.finalize()
    ingest_seconds = time.perf_counter() - started

    rng = random.Random(seed)
    probes = rng.choices(backup.fingerprints, k=num_lookups)
    started = time.perf_counter()
    hits = 0
    for fingerprint in probes:
        if stores.meta.get(fingerprint) is not None:
            hits += 1
        stats.left.get(fingerprint)
    lookup_seconds = time.perf_counter() - started
    assert hits == num_lookups  # every probe is a real fingerprint

    result = {
        "backend": spec,
        "chunks": len(backup),
        "unique": stats.unique_chunks,
        "ingest_seconds": ingest_seconds,
        "ingest_chunks_per_s": len(backup) / ingest_seconds,
        "lookups": num_lookups,
        "lookup_seconds": lookup_seconds,
        "lookups_per_s": num_lookups / lookup_seconds,
        "digest": count_digest(stats),
    }
    stores.close()
    return result


def run_columnar(
    backup: Backup, directory: Path, num_lookups: int, jobs: int, seed: int = 5
) -> dict:
    """Sharded COUNT over the memory-mapped columnar layout of the same
    trace, probed through the same lazy-view surface the attacks use."""
    from repro.attacks.sharded import sharded_count
    from repro.datasets.columnar import write_series
    from repro.datasets.model import BackupSeries

    series = BackupSeries(name="bench-backend", backups=[backup])
    trace = write_series(series, directory)
    try:
        started = time.perf_counter()
        stats = sharded_count(trace.view(0), jobs=jobs)
        stats.left
        stats.right
        ingest_seconds = time.perf_counter() - started

        rng = random.Random(seed)
        probes = rng.choices(backup.fingerprints, k=num_lookups)
        started = time.perf_counter()
        hits = 0
        for fingerprint in probes:
            if stats.frequencies.get(fingerprint) is not None:
                hits += 1
            stats.left.get(fingerprint)
        lookup_seconds = time.perf_counter() - started
        assert hits == num_lookups

        return {
            "backend": f"columnar:{jobs}",
            "chunks": len(backup),
            "unique": stats.unique_chunks,
            "ingest_seconds": ingest_seconds,
            "ingest_chunks_per_s": len(backup) / ingest_seconds,
            "lookups": num_lookups,
            "lookup_seconds": lookup_seconds,
            "lookups_per_s": num_lookups / lookup_seconds,
            "digest": count_digest(stats),
        }
    finally:
        trace.close()


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.benchmeta import run_isolated

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chunks", type=int, default=DEFAULT_CHUNKS)
    parser.add_argument(
        "--unique-fraction", type=float, default=DEFAULT_UNIQUE_FRACTION
    )
    parser.add_argument("--lookups", type=int, default=DEFAULT_LOOKUPS)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the columnar sharded COUNT row",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write rows + env envelope as a baseline JSON (BENCH_backend_scale.json)",
    )
    args = parser.parse_args(argv)

    backup = synthetic_trace(args.chunks, args.unique_fraction)
    reference_digest = count_digest(count_with_neighbors(backup))

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-backend-") as tmp:
        for spec in BACKENDS:
            directory = (
                None if spec == "memory" else Path(tmp) / spec.replace(":", "-")
            )
            # Forked child per backend: peak RSS is the backend's own
            # high-water mark, not the max over everything run so far.
            row, peak_rss = run_isolated(
                run_backend, spec, backup, args.lookups, directory
            )
            row["peak_rss_mib"] = (
                round(peak_rss / (1 << 20), 1) if peak_rss else None
            )
            rows.append(row)
        row, peak_rss = run_isolated(
            run_columnar, backup, Path(tmp) / "columnar", args.lookups, args.jobs
        )
        row["peak_rss_mib"] = round(peak_rss / (1 << 20), 1) if peak_rss else None
        rows.append(row)

    print(
        f"{'backend':<12} {'chunks':>9} {'unique':>8} "
        f"{'ingest s':>9} {'ingest/s':>11} {'lookup s':>9} {'lookup/s':>11} "
        f"{'rss MiB':>8}"
    )
    for row in rows:
        rss = row["peak_rss_mib"]
        print(
            f"{row['backend']:<12} {row['chunks']:>9,} {row['unique']:>8,} "
            f"{row['ingest_seconds']:>9.2f} {row['ingest_chunks_per_s']:>11,.0f} "
            f"{row['lookup_seconds']:>9.2f} {row['lookups_per_s']:>11,.0f} "
            f"{rss if rss is not None else '-':>8}"
        )

    digests = {row["digest"] for row in rows} | {reference_digest}
    identical = len(digests) == 1
    if args.output:
        payload = {
            "env": bench_envelope(),
            "chunks": args.chunks,
            "lookups": args.lookups,
            "identical": identical,
            "rows": [
                {
                    key: (round(value, 4) if isinstance(value, float) else value)
                    for key, value in row.items()
                }
                for row in rows
            ],
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.output}")
    if not identical:
        print("FAIL: COUNT output differs across backends!")
        return 1
    print(
        f"COUNT digest identical across all backends, the columnar sharded "
        f"COUNT, and the in-memory reference: {reference_digest[:16]}…"
    )
    return 0


# -- pytest-benchmark entry points -------------------------------------------


def _bench_ingest(benchmark, spec: str, tmp_path):
    backup = synthetic_trace(min(DEFAULT_CHUNKS, 100_000))

    def run():
        directory = None
        if spec != "memory":
            directory = tmp_path / f"{spec.replace(':', '-')}-{time.monotonic_ns()}"
        return run_backend(spec, backup, 1000, directory)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["unique"] > 1000


def bench_backend_ingest_memory(benchmark, tmp_path):
    _bench_ingest(benchmark, "memory", tmp_path)


def bench_backend_ingest_sqlite(benchmark, tmp_path):
    _bench_ingest(benchmark, "sqlite", tmp_path)


def bench_backend_ingest_sharded(benchmark, tmp_path):
    _bench_ingest(benchmark, "sharded:4", tmp_path)


if __name__ == "__main__":
    raise SystemExit(main())
