"""Backend scaling bench: memory vs SQLite vs sharded COUNT state.

Ingests a skewed synthetic trace (default 10^5 chunk records; use
``--chunks 1000000`` or ``BENCH_BACKEND_CHUNKS=1000000`` for paper-scale)
through the streaming COUNT on each backend, then measures random lookup
throughput against the resulting stores. Before reporting, it verifies the
tentpole invariant: the COUNT digest — frequencies, sizes, and both
neighbor tables, *including iteration order* — is byte-identical across
all backends and equal to the single-pass in-memory COUNT.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backend_scale.py [--chunks N]

or under pytest-benchmark like the other micro benches.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import random
import struct
import tempfile
import time
from pathlib import Path

from repro.attacks.frequency import count_with_neighbors
from repro.attacks.streaming import CountStores, StreamingCount
from repro.datasets.model import Backup

DEFAULT_CHUNKS = int(os.environ.get("BENCH_BACKEND_CHUNKS", 100_000))
DEFAULT_UNIQUE_FRACTION = 0.2
DEFAULT_LOOKUPS = 20_000
BACKENDS = ("memory", "sqlite", "sharded:4")

_PAIR = struct.Struct(">8sQ")


def synthetic_trace(
    num_chunks: int = DEFAULT_CHUNKS,
    unique_fraction: float = DEFAULT_UNIQUE_FRACTION,
    seed: int = 11,
) -> Backup:
    """A skewed logical chunk stream (few hot chunks, long cold tail)."""
    rng = random.Random(seed)
    num_unique = max(1, int(num_chunks * unique_fraction))
    pool = [rng.randbytes(8) for _ in range(num_unique)]
    size_of = {fp: rng.randrange(2048, 16384) for fp in pool}
    fingerprints = [
        pool[min(int(rng.random() ** 3 * num_unique), num_unique - 1)]
        for _ in range(num_chunks)
    ]
    return Backup(
        label=f"bench-{num_chunks}",
        fingerprints=fingerprints,
        sizes=[size_of[fp] for fp in fingerprints],
    )


def count_digest(stats) -> str:
    """Canonical digest of a COUNT result, sensitive to iteration order.

    Works for both :class:`~repro.attacks.frequency.ChunkStats` (dict
    tables) and :class:`~repro.attacks.streaming.BackendChunkStats`
    (backend tables): equal digests mean byte-identical attack input.
    """
    digest = hashlib.sha256()
    for fingerprint, frequency in stats.frequencies.items():
        digest.update(_PAIR.pack(fingerprint, frequency))
        digest.update(_PAIR.pack(fingerprint, stats.sizes[fingerprint]))
        for side in (stats.left, stats.right):
            table = side.get(fingerprint) or {}
            for neighbor, count in table.items():
                digest.update(_PAIR.pack(neighbor, count))
    return digest.hexdigest()


def open_stores(spec: str, directory: Path | None) -> CountStores:
    if directory is None:
        return CountStores.in_memory()
    return CountStores.open(directory, spec)


def run_backend(
    spec: str,
    backup: Backup,
    num_lookups: int,
    directory: Path | None,
    seed: int = 5,
) -> dict:
    """Ingest + lookup one backend; returns throughput numbers and digest."""
    stores = open_stores(spec, directory)
    counter = StreamingCount(stores)

    started = time.perf_counter()
    counter.ingest_backup(backup)
    stats = counter.finalize()
    ingest_seconds = time.perf_counter() - started

    rng = random.Random(seed)
    probes = rng.choices(backup.fingerprints, k=num_lookups)
    started = time.perf_counter()
    hits = 0
    for fingerprint in probes:
        if stores.meta.get(fingerprint) is not None:
            hits += 1
        stats.left.get(fingerprint)
    lookup_seconds = time.perf_counter() - started
    assert hits == num_lookups  # every probe is a real fingerprint

    result = {
        "backend": spec,
        "chunks": len(backup),
        "unique": stats.unique_chunks,
        "ingest_seconds": ingest_seconds,
        "ingest_chunks_per_s": len(backup) / ingest_seconds,
        "lookups": num_lookups,
        "lookup_seconds": lookup_seconds,
        "lookups_per_s": num_lookups / lookup_seconds,
        "digest": count_digest(stats),
    }
    stores.close()
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chunks", type=int, default=DEFAULT_CHUNKS)
    parser.add_argument(
        "--unique-fraction", type=float, default=DEFAULT_UNIQUE_FRACTION
    )
    parser.add_argument("--lookups", type=int, default=DEFAULT_LOOKUPS)
    args = parser.parse_args(argv)

    backup = synthetic_trace(args.chunks, args.unique_fraction)
    reference_digest = count_digest(count_with_neighbors(backup))

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-backend-") as tmp:
        for spec in BACKENDS:
            directory = (
                None if spec == "memory" else Path(tmp) / spec.replace(":", "-")
            )
            rows.append(run_backend(spec, backup, args.lookups, directory))

    print(
        f"{'backend':<12} {'chunks':>9} {'unique':>8} "
        f"{'ingest s':>9} {'ingest/s':>11} {'lookup s':>9} {'lookup/s':>11}"
    )
    for row in rows:
        print(
            f"{row['backend']:<12} {row['chunks']:>9,} {row['unique']:>8,} "
            f"{row['ingest_seconds']:>9.2f} {row['ingest_chunks_per_s']:>11,.0f} "
            f"{row['lookup_seconds']:>9.2f} {row['lookups_per_s']:>11,.0f}"
        )

    digests = {row["digest"] for row in rows} | {reference_digest}
    if len(digests) != 1:
        print("FAIL: COUNT output differs across backends!")
        return 1
    print(
        f"COUNT digest identical across all backends and the in-memory "
        f"reference: {reference_digest[:16]}…"
    )
    return 0


# -- pytest-benchmark entry points -------------------------------------------


def _bench_ingest(benchmark, spec: str, tmp_path):
    backup = synthetic_trace(min(DEFAULT_CHUNKS, 100_000))

    def run():
        directory = None
        if spec != "memory":
            directory = tmp_path / f"{spec.replace(':', '-')}-{time.monotonic_ns()}"
        return run_backend(spec, backup, 1000, directory)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["unique"] > 1000


def bench_backend_ingest_memory(benchmark, tmp_path):
    _bench_ingest(benchmark, "memory", tmp_path)


def bench_backend_ingest_sqlite(benchmark, tmp_path):
    _bench_ingest(benchmark, "sqlite", tmp_path)


def bench_backend_ingest_sharded(benchmark, tmp_path):
    _bench_ingest(benchmark, "sharded:4", tmp_path)


if __name__ == "__main__":
    raise SystemExit(main())
