"""Ablation: Algorithm 5's deque scramble vs a uniform Fisher–Yates shuffle.

The paper's scrambling appends each chunk to the front or back of a deque
by one random bit — cheaper than a full shuffle and, notably, it preserves
*some* relative order (two chunks sent to the back keep their order). This
ablation checks whether the cheaper permutation is already sufficient: both
modes must suppress the advanced attack to near the leakage floor, and
their residual rates should be of the same order.
"""

from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import scaled_segmentation, series_by_name
from repro.attacks import AdvancedLocalityAttack, AttackEvaluator
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.defenses.scramble import DEQUE, FISHER_YATES

from benchmarks.conftest import run_figure

_LEAKAGE = 0.002


def _driver() -> FigureResult:
    result = FigureResult(
        figure="Ablation scramble mode",
        title="Combined defense: deque vs Fisher-Yates scrambling "
        "(advanced attack, 0.2% leakage)",
        columns=["dataset", "mode", "inference_rate"],
    )
    for dataset in ("fsl", "synthetic"):
        series = series_by_name(dataset)
        for mode in (DEQUE, FISHER_YATES):
            pipeline = DefensePipeline(
                DefenseScheme.COMBINED,
                segmentation=scaled_segmentation(series),
                seed=7,
                scramble_mode=mode,
            )
            evaluator = AttackEvaluator(pipeline.encrypt_series(series))
            report = evaluator.run(
                AdvancedLocalityAttack(u=1, v=15, w=500_000),
                auxiliary=-2,
                target=-1,
                leakage_rate=_LEAKAGE,
            )
            result.add_row(dataset, mode, round(report.inference_rate, 5))
    return result


def bench_ablation_scramble_mode(benchmark, results_dir):
    result = run_figure(benchmark, _driver, results_dir)
    rates = {(row[0], row[1]): row[2] for row in result.rows}
    for dataset in ("fsl", "synthetic"):
        for mode in (DEQUE, FISHER_YATES):
            # Both permutations suppress the attack to near the 0.2%
            # leakage floor.
            assert rates[(dataset, mode)] < 0.02, (dataset, mode)
        # And the paper's cheap deque scramble is not materially weaker.
        assert rates[(dataset, DEQUE)] < 5 * max(
            rates[(dataset, FISHER_YATES)], _LEAKAGE
        )
