"""Multi-tenant service throughput bench: requests/sec per index backend.

Synthesizes a tenant population sized to roughly ``--uploads`` upload
chunk records (10^4 by default, 10^5 with ``--full``), serves the whole
request stream through the :class:`~repro.service.server.DedupService`
over each index backend, and reports ingest throughput.  Three
assertions mirror ``bench_scenario_runner.py``'s engine contract:

1. **jobs identity** — the full ``service_report`` JSON is byte-identical
   at ``jobs=1`` and ``--jobs N`` (the attack pairs fan out through the
   scenario runner; the spec-order merge makes scheduling invisible);
2. **rerun identity** — re-simulating the same config from scratch
   produces the identical report (the whole pipeline is seed-driven);
3. **backend identity** — memory, SQLite and sharded backends produce
   identical reports apart from the backend name in the config (the
   index backend may change *where* fingerprints live, never any dedup
   decision or metered byte).

The synthesized traffic stream depends only on (seed, population), so
all backend variants serve the *same* memoised stream
(:func:`repro.service.simulate.synthesize_requests`) — population
synthesis is paid once per bench run, not once per backend, and the
per-backend timing below isolates serving cost from synthesis cost.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --full --jobs 8
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.common.units import MiB
from repro.service.simulate import (
    ServiceConfig,
    service_report,
    simulate,
    traffic_requests,
)

BACKENDS = ("memory", "sqlite", "sharded:4")

# Per-upload chunk records at the bench's population shape; tenant count
# is derived from the requested upload volume.
ROUNDS = 2
FILES_PER_TENANT = 8
MEAN_FILE_CHUNKS = 16
CHUNKS_PER_UPLOAD = FILES_PER_TENANT * MEAN_FILE_CHUNKS


def make_config(uploads: int, backend: str, path: str | None) -> ServiceConfig:
    tenants = max(2, uploads // (ROUNDS * CHUNKS_PER_UPLOAD))
    return ServiceConfig(
        tenants=tenants,
        rounds=ROUNDS,
        files_per_tenant=FILES_PER_TENANT,
        mean_file_chunks=MEAN_FILE_CHUNKS,
        backend=backend,
        backend_path=path,
        attack_targets=4,
        seed=11,
    )


def strip_config(report: dict) -> dict:
    """The report minus its config (backends must agree on the rest)."""
    return {key: value for key, value in report.items() if key != "config"}


def run_backend(
    config: ServiceConfig, rerun_config: ServiceConfig, jobs: int
) -> tuple[dict, float, dict[str, float]]:
    """Simulate fresh, then build reports at jobs=1 and jobs=N.

    ``rerun_config`` is the same experiment against a fresh backend path
    (a file-backed index persists, so re-ingesting into the *same* path
    would dedup against the previous run's leftovers).
    """
    simulate.cache_clear()
    # Warm the shared traffic memo outside the timer: synthesis depends
    # only on (seed, population), so every backend variant serves the
    # same stream and the timing below isolates serving cost.
    traffic_requests(config)
    start = time.perf_counter()
    trace = simulate(config)
    ingest_seconds = time.perf_counter() - start

    uploads = [
        record
        for record in trace.meter.observables
        if record.kind == "upload"
    ]
    records = sum(record.total_chunks for record in uploads)
    logical = sum(record.logical_bytes for record in uploads)
    stats = {
        "uploads": len(uploads),
        "records": records,
        "uploads_per_s": len(uploads) / ingest_seconds,
        "records_per_s": records / ingest_seconds,
        "mib_per_s": logical / MiB / ingest_seconds,
    }

    serial = service_report(config, jobs=1)
    parallel = service_report(config, jobs=jobs)
    assert json.dumps(parallel, sort_keys=True) == json.dumps(
        serial, sort_keys=True
    ), f"jobs={jobs} report differs from serial ({config.backend})"

    simulate.cache_clear()
    rerun = service_report(rerun_config, jobs=1)
    assert json.dumps(strip_config(rerun), sort_keys=True) == json.dumps(
        strip_config(serial), sort_keys=True
    ), f"fresh rerun differs ({config.backend})"
    return serial, ingest_seconds, stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--uploads",
        type=int,
        default=10_000,
        help="approximate total upload chunk records (default 10^4)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="bench at 10^5 upload chunk records",
    )
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)
    uploads = 100_000 if args.full else args.uploads

    reports: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="service-bench-") as workdir:
        for backend in BACKENDS:
            if backend == "memory":
                path = rerun_path = None
            else:
                stem = backend.replace(":", "-")
                path = str(Path(workdir) / stem)
                rerun_path = str(Path(workdir) / f"{stem}-rerun")
            config = make_config(uploads, backend, path)
            rerun_config = make_config(uploads, backend, rerun_path)
            report, seconds, stats = run_backend(
                config, rerun_config, jobs=args.jobs
            )
            reports[backend] = report
            print(
                f"{backend:10s}: {stats['uploads']:5d} uploads "
                f"({stats['records']:7d} records) in {seconds:6.2f}s  "
                f"{stats['uploads_per_s']:8.1f} req/s  "
                f"{stats['records_per_s']:9.0f} records/s  "
                f"{stats['mib_per_s']:7.1f} MiB/s"
            )
    print(f"jobs={args.jobs} report byte-identical to serial: ok")
    print("fresh-rerun report byte-identical: ok")

    baseline = strip_config(reports["memory"])
    for backend in BACKENDS[1:]:
        # Everything but the backend name must agree: the index backend
        # never changes a dedup decision or a metered byte.
        stripped = strip_config(reports[backend])
        assert json.dumps(stripped, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        ), f"{backend} report differs from memory backend"
    print("reports byte-identical across backends (config aside): ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
