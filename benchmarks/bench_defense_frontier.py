"""Defense-frontier bench: the tunable leakage/cost sweep as a gate.

Runs the ``defense_frontier`` grid (:mod:`repro.analysis.frontier`) and
asserts the acceptance properties the committed
``BENCH_defense_frontier.json`` baseline demonstrates:

1. **Leakage monotonicity** — attack inference is non-increasing in the
   obfuscation knob ``t``, and dedup-signal recall is non-increasing in
   the randomized-response knob ``p`` (sample-wise, not just in
   expectation — the shaping layer's CRN coupling makes this exact).
2. **Cost provenance** — every row's cost columns (stored/transferred
   bytes) are populated from the ``frontier.*`` counters the cells
   record through :mod:`repro.obs`; an empty cost column means the
   metrics plumbing broke.
3. **Drift** (``--compare``) — rows shared with the committed baseline
   must match exactly (the grid is deterministic); the baseline is
   pruned to the rows the current grid produced, so a ``--quick`` smoke
   subset gates against the full committed report.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_defense_frontier.py \
        [--quick] [--jobs N] [--output FILE] [--compare BASELINE]

``--quick`` shrinks to the CI smoke grid (2 obfuscation knobs x 2
attacks, one shaping policy against its honest anchor).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.frontier import (
    DEFAULT_ATTACKS,
    DEFAULT_DATASETS,
    DEFAULT_POLICIES,
    DEFAULT_SCHEMES,
    compare_reports,
    frontier_report,
)

QUICK_SCHEMES = ("obfuscate:2", "obfuscate:4")
QUICK_ATTACKS = ("basic", "locality")
QUICK_POLICIES = ("honest", "rr:0.5")

_IDENTITY = {
    "storage": ("dataset", "scheme", "attack"),
    "bandwidth": ("scheme", "policy"),
}


def prune_baseline(baseline: dict, current: dict) -> dict:
    """The baseline restricted to the rows the current grid produced,
    so a smoke subset compares against the full committed report."""
    pruned = dict(baseline)
    for section, identity in _IDENTITY.items():
        produced = {
            tuple(row[key] for key in identity)
            for row in current.get(section, ())
        }
        pruned[section] = [
            row
            for row in baseline.get(section, ())
            if tuple(row[key] for key in identity) in produced
        ]
    return pruned


def check_monotonicity(report: dict) -> list[str]:
    problems = []
    for section in ("storage", "bandwidth"):
        entries = report["monotonicity"][section]
        if not entries:
            problems.append(f"{section}: no monotonicity axis evaluated")
        for entry in entries:
            if not entry["non_increasing"]:
                problems.append(f"{section}: monotonicity violated: {entry}")
    return problems


def check_cost_columns(report: dict) -> list[str]:
    problems = []
    for row in report["storage"]:
        if not row.get("stored_bytes") or not row.get("baseline_bytes"):
            problems.append(f"storage: empty cost columns in {row}")
    for row in report["bandwidth"]:
        if not row.get("transferred_bytes") or not row.get("honest_bytes"):
            problems.append(f"bandwidth: empty cost columns in {row}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", metavar="FILE")
    parser.add_argument("--compare", metavar="FILE")
    args = parser.parse_args(argv)

    if args.quick:
        schemes, attacks, policies = (
            QUICK_SCHEMES, QUICK_ATTACKS, QUICK_POLICIES,
        )
    else:
        schemes, attacks, policies = (
            DEFAULT_SCHEMES, DEFAULT_ATTACKS, DEFAULT_POLICIES,
        )

    started = time.perf_counter()
    report = frontier_report(
        datasets=DEFAULT_DATASETS,
        schemes=schemes,
        attacks=attacks,
        policies=policies,
        seed=args.seed,
        jobs=args.jobs,
    )
    elapsed = time.perf_counter() - started
    print(
        f"frontier grid: {len(report['storage'])} storage rows, "
        f"{len(report['bandwidth'])} bandwidth rows in {elapsed:.1f}s"
    )

    problems = check_monotonicity(report) + check_cost_columns(report)
    if args.compare:
        with open(args.compare, encoding="utf-8") as handle:
            baseline = json.load(handle)
        drifts = compare_reports(report, prune_baseline(baseline, report))
        problems += [f"drift vs {args.compare}: {drift}" for drift in drifts]
        if not drifts:
            print(f"no drift vs {args.compare}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.output}")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
