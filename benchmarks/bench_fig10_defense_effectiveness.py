"""Figure 10: defense effectiveness against the advanced attack (KPM).

Paper claims (§7.2): at 0.2 % leakage MinHash encryption alone suppresses
the advanced attack to 7.3 % / 3.8 % / 3.4 % (FSL / synthetic / VM), and
the combined MinHash + scrambling scheme pushes it down to 0.20–0.24 % —
barely above the leaked chunks themselves.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig10_defense_effectiveness
from repro.analysis.workloads import encrypted_series
from repro.attacks import AdvancedLocalityAttack, AttackEvaluator
from repro.analysis.figures import FIG8_ANCHORS, KPM_W


def bench_fig10_defense_effectiveness(benchmark, results_dir):
    result = run_figure(benchmark, fig10_defense_effectiveness, results_dir)

    for dataset in ("fsl", "synthetic", "vm"):
        minhash = series_of(result, dataset=dataset, scheme="minhash")
        combined = series_of(result, dataset=dataset, scheme="combined")

        # The combined scheme's rate stays within a whisker of the leakage
        # itself (leaked chunks count toward the rate).
        assert combined[-1] < 0.01, (dataset, combined)
        # MinHash alone helps but is weaker than the combined scheme.
        assert combined[-1] <= minhash[-1], dataset

        # Compare against the undefended baseline at the same anchor.
        aux, target = FIG8_ANCHORS[dataset]
        undefended = AttackEvaluator(encrypted_series(dataset)).run(
            AdvancedLocalityAttack(w=KPM_W),
            aux,
            target,
            leakage_rate=0.002,
        )
        assert minhash[-1] < undefended.inference_rate, dataset
        assert combined[-1] < undefended.inference_rate / 10, dataset
