"""Figure 11: storage efficiency of the combined scheme vs exact MLE dedup.

Paper claims (§7.3): the combined scheme maintains the high storage saving
of deduplication — the final cumulative saving is within a few percentage
points of MLE's (FSL 3.6 pp, synthetic ~3 pp, VM 0.7 pp) and savings grow
as more backups are stored.

At bench scale the attack-calibrated fsl/synthetic workloads over-weight
small cross-context duplicates (see EXPERIMENTS.md), so the paper-matching
bound is asserted on the storage-fsl workload, and a looser bound on the
others.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig11_storage_saving


def bench_fig11_storage_saving(benchmark, results_dir):
    result = run_figure(benchmark, fig11_storage_saving, results_dir)

    for dataset, max_loss in (
        ("storage-fsl", 0.06),
        ("fsl", 0.25),
        ("synthetic", 0.25),
        ("vm", 0.15),
    ):
        mle = series_of(result, dataset=dataset, scheme="mle")
        combined = series_of(result, dataset=dataset, scheme="combined")
        # Savings grow with the series for both schemes.
        assert mle[-1] > mle[0]
        assert combined[-1] > combined[0]
        # Combined never saves more than exact dedup, and the loss is
        # bounded.
        final_loss = mle[-1] - combined[-1]
        assert 0.0 <= final_loss <= max_loss, (dataset, final_loss)

    # The headline number: on the temporal-redundancy workload the loss is
    # a few percentage points, like the paper's 3.6 pp.
    mle = series_of(result, dataset="storage-fsl", scheme="mle")
    combined = series_of(result, dataset="storage-fsl", scheme="combined")
    assert mle[-1] > 0.6  # deduplication still saves most of the data
    assert (mle[-1] - combined[-1]) < 0.06
