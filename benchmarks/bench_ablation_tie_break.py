"""Ablation: tie-breaking order in the neighbor frequency analyses.

DESIGN.md §5: the paper's implementation stores each chunk's neighbor
lists *sequentially* in LevelDB, so a stable frequency sort leaves tied
co-occurrence counts in first-occurrence order — which is temporally
correlated between the auxiliary and target streams wherever content is
unmodified. Re-ranking ties by fingerprint bytes (uncorrelated between
ciphertext and plaintext) destroys that alignment. This ablation
quantifies how much of the locality-based attack's power comes from it.
"""

from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import encrypted_series
from repro.attacks import AttackEvaluator
from repro.attacks.frequency import FINGERPRINT, INSERTION
from repro.attacks.locality import LocalityAttack

from benchmarks.conftest import run_figure


def _driver() -> FigureResult:
    result = FigureResult(
        figure="Ablation tie-break",
        title="Locality attack: neighbor tie-break order (aux=-2, target=-1)",
        columns=["dataset", "tie_break", "inference_rate"],
    )
    for dataset in ("fsl", "vm"):
        evaluator = AttackEvaluator(encrypted_series(dataset))
        for tie_break in (INSERTION, FINGERPRINT):
            report = evaluator.run(
                LocalityAttack(u=1, v=15, w=200_000, tie_break=tie_break),
                auxiliary=-2,
                target=-1,
            )
            result.add_row(dataset, tie_break, round(report.inference_rate, 5))
    return result


def bench_ablation_tie_break(benchmark, results_dir):
    result = run_figure(benchmark, _driver, results_dir)
    rates = {
        (row[0], row[1]): row[2] for row in result.rows
    }
    for dataset in ("fsl", "vm"):
        insertion = rates[(dataset, INSERTION)]
        fingerprint = rates[(dataset, FINGERPRINT)]
        # Insertion-order ties are a large part of the attack's power.
        assert insertion > fingerprint, dataset
        assert insertion > 2 * fingerprint, (dataset, insertion, fingerprint)
