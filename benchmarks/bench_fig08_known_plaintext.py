"""Figure 8: known-plaintext mode — inference rate vs leakage rate.

Paper claims (§5.3.3): a tiny leakage (0.2 % of the target's chunks) boosts
the inference rate dramatically (FSL: 27.5 % locality / 38.2 % advanced);
rates grow monotonically-ish with the leakage rate; on VM both attacks
coincide.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig8_known_plaintext


def bench_fig08_known_plaintext(benchmark, results_dir):
    result = run_figure(benchmark, fig8_known_plaintext, results_dir)

    for dataset in ("fsl", "synthetic", "vm"):
        locality = series_of(result, dataset=dataset, attack="locality")
        # growing leakage never hurts much and the largest leakage attains
        # a strong rate
        assert locality[-1] >= locality[0] * 0.9, (dataset, locality)
        assert locality[-1] > 0.05, (dataset, locality)

    for dataset in ("fsl", "synthetic"):
        locality = series_of(result, dataset=dataset, attack="locality")
        advanced = series_of(result, dataset=dataset, attack="advanced")
        assert advanced[-1] >= locality[-1] * 0.9, dataset

    # The leakage itself is only 0.2% — the attack must amplify it by
    # orders of magnitude (paper: 0.2% leaked -> 27.5% inferred on FSL).
    fsl_locality = series_of(result, dataset="fsl", attack="locality")
    assert fsl_locality[-1] > 25 * 0.002
