"""Figure 1: skewed chunk-frequency distributions (FSL and VM).

Paper claim: both datasets are heavily skewed — in FSL 99.8 % of chunks
occur fewer than 100 times while a tiny tail exceeds 10 000 occurrences; VM
is similar (97 % below 100). At our reduced scale the shape criterion is a
strong head (≥ 95 % of unique chunks below 100 occurrences) together with a
heavy tail (maximum frequency ≥ 100× the median).
"""

from benchmarks.conftest import run_figure
from repro.analysis.figures import fig1_frequency_skew


def bench_fig01_frequency_skew(benchmark, results_dir):
    result = run_figure(benchmark, fig1_frequency_skew, results_dir)
    for row in result.rows:
        dataset, unique, below10, below100, median, p99, peak = row
        assert unique > 10_000, f"{dataset}: workload too small"
        assert below100 > 0.95, f"{dataset}: head not skewed enough"
        assert peak >= 100 * max(median, 1), f"{dataset}: tail too light"
        assert p99 < peak, f"{dataset}: no extreme tail beyond p99"
