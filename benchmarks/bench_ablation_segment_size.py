"""Ablation: segment size vs defense effectiveness and storage loss.

Smaller segments mean more MinHash keys (stronger frequency perturbation,
less collateral when a segment's minimum fingerprint changes) but also
more divergence opportunities. This sweep maps the trade-off the paper
fixes at 512 KB/1 MB/2 MB, across segment scales expressed in expected
chunks per segment.
"""

from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import series_by_name
from repro.attacks import AdvancedLocalityAttack, AttackEvaluator
from repro.datasets.stats import storage_savings
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.defenses.segmentation import SegmentationSpec

from benchmarks.conftest import run_figure

_CHUNKS_PER_SEGMENT = (8, 16, 64)
_AVG_CHUNK = 8192


def _driver() -> FigureResult:
    result = FigureResult(
        figure="Ablation segment size",
        title="Combined defense vs segment size (storage-fsl workload)",
        columns=[
            "chunks_per_segment",
            "inference_rate",
            "saving_mle",
            "saving_combined",
            "saving_loss",
        ],
    )
    series = series_by_name("storage-fsl")
    mle = DefensePipeline(DefenseScheme.MLE).encrypt_series(series)
    saving_mle = storage_savings([b.ciphertext for b in mle.backups])[-1]
    for chunks in _CHUNKS_PER_SEGMENT:
        spec = SegmentationSpec(
            min_bytes=chunks * _AVG_CHUNK // 2,
            avg_bytes=chunks * _AVG_CHUNK,
            max_bytes=chunks * _AVG_CHUNK * 2,
        )
        pipeline = DefensePipeline(
            DefenseScheme.COMBINED, segmentation=spec, seed=7
        )
        encrypted = pipeline.encrypt_series(series)
        report = AttackEvaluator(encrypted).run(
            AdvancedLocalityAttack(u=1, v=15, w=500_000),
            auxiliary=2,
            target=-1,
            leakage_rate=0.002,
        )
        saving_combined = storage_savings(
            [b.ciphertext for b in encrypted.backups]
        )[-1]
        result.add_row(
            chunks,
            round(report.inference_rate, 5),
            round(saving_mle, 4),
            round(saving_combined, 4),
            round(saving_mle - saving_combined, 4),
        )
    return result


def bench_ablation_segment_size(benchmark, results_dir):
    result = run_figure(benchmark, _driver, results_dir)
    rates = result.column("inference_rate")
    losses = result.column("saving_loss")
    # Every segment size suppresses the attack to near the leakage floor.
    assert all(rate < 0.03 for rate in rates), rates
    # Storage loss stays bounded at every size...
    assert all(0.0 <= loss < 0.20 for loss in losses), losses
    # ...and the 16-chunks-per-segment point (what SegmentationSpec.scaled
    # uses) sits at the bottom of the U-shaped trade-off: tiny segments
    # fragment dedup, huge segments amplify min-change collateral.
    assert losses[1] == min(losses), losses
