"""Figure 4: impact of the locality-attack parameters u, v, w.

Paper claims (§5.3.1):
(a) the inference rate *decreases* as u grows — extra seeds are less
    reliable and poison the inferred set;
(b) the rate first rises with v (more pairs inferred per neighbor
    analysis), peaks around v ≈ 15–20, then declines slightly;
(c) the rate is non-decreasing in w and saturates once the FIFO queue stops
    overflowing.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig4_parameter_impact


def bench_fig04_parameters(benchmark, results_dir):
    result = run_figure(benchmark, fig4_parameter_impact, results_dir)
    for dataset in ("fsl", "vm"):
        u_series = series_of(result, dataset=dataset, parameter="u")
        v_series = series_of(result, dataset=dataset, parameter="v")
        w_series = series_of(result, dataset=dataset, parameter="w")

        # (a) u=1 beats large u.
        assert u_series[0] >= u_series[-1], (dataset, "u", u_series)

        # (b) the v-curve is unimodal-ish: its peak is not at the smallest
        # v, and the tail does not exceed the peak.
        peak = max(v_series)
        assert peak > v_series[0] * 0.99, (dataset, "v", v_series)
        assert v_series[-1] <= peak, (dataset, "v", v_series)

        # (c) w is monotone non-decreasing up to noise and saturates.
        assert w_series[-1] >= w_series[0] * 0.99, (dataset, "w", w_series)
