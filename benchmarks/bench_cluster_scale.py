"""Cluster scaling bench: rebalance cost, placement skew, partial-view leakage.

Three experiments over the multi-node storage tier
(:mod:`repro.cluster`), each asserting its acceptance property:

1. **Rebalance accounting** — store a pinned key stream on an N-node
   cluster, add one node, and check moved keys against the theoretical
   bound: consistent hashing moves ≈ ``K/(N+1)`` keys (asserted via
   :meth:`~repro.cluster.cluster.RebalanceReport.within_bound`), the
   modulo baseline moves ≈ ``N/(N+1)`` of everything.
2. **Placement skew** — per-node load imbalance (max/mean) and
   coefficient of variation for both routing policies.
3. **Partial-view leakage sweep** — the ``cluster`` scenario cells over
   1→16 nodes on a pinned seed grid: one compromised node's shard of
   the target backup is attacked with the locality attack
   (known-plaintext 0.2%, the journal setting that keeps the curve
   informative), and the inference rate must be monotonically
   non-increasing in cluster size (ring shards only shrink as the
   cluster grows).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster_scale.py [--quick]

``--quick`` shrinks the key stream and swaps the FSL workload for the
synthetic one (CI smoke); ``--json FILE`` writes the results for the
README table.  Honors ``REPRO_FIGURE_JOBS`` for the sweep's cell fan-out.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time

from repro.cluster import DedupCluster
from repro.cluster.cells import CLUSTER_GRID_COLUMNS, cluster_grid_cells
from repro.scenarios.runner import Runner, rows_from

DEFAULT_KEYS = 50_000
QUICK_KEYS = 5_000
NODE_SWEEP = (1, 2, 4, 8, 16)
LEAKAGE_RATE = 0.002


def pinned_stream(count: int, seed: int = 23) -> tuple[list[bytes], list[int]]:
    """A pinned unique-key chunk stream (keys and sizes)."""
    rng = random.Random(seed)
    keys = [rng.randbytes(8) for _ in range(count)]
    sizes = [rng.randrange(2048, 16384) for _ in keys]
    return keys, sizes


def run_rebalance(num_keys: int, nodes: int = 4) -> tuple[list[dict], bool]:
    """Add one node to an N-node cluster under both routing policies."""
    keys, sizes = pinned_stream(num_keys)
    rows = []
    ok = True
    for routing in ("ring", "modulo"):
        cluster = DedupCluster(nodes=nodes, routing=routing)
        started = time.perf_counter()
        cluster.store_stream(keys, sizes)
        ingest_seconds = time.perf_counter() - started
        started = time.perf_counter()
        report = cluster.add_node()
        rebalance_seconds = time.perf_counter() - started
        within = report.within_bound() if routing == "ring" else True
        ok = ok and within
        rows.append(
            {
                "routing": routing,
                "nodes_before": nodes,
                "total_keys": report.total_keys,
                "moved_keys": report.moved_keys,
                "moved_fraction": round(report.moved_fraction, 4),
                "theoretical_fraction": round(
                    report.theoretical_fraction, 4
                ),
                "within_bound": within,
                "ingest_seconds": round(ingest_seconds, 3),
                "rebalance_seconds": round(rebalance_seconds, 3),
            }
        )
        cluster.close()
    return rows, ok


def run_skew(num_keys: int, nodes: int = 8) -> list[dict]:
    """Per-node placement skew for both routing policies."""
    keys, sizes = pinned_stream(num_keys)
    rows = []
    for routing in ("ring", "modulo"):
        cluster = DedupCluster(nodes=nodes, routing=routing)
        cluster.store_stream(keys, sizes)
        report = cluster.load_report()
        rows.append(
            {
                "routing": routing,
                "nodes": nodes,
                "imbalance": report["skew"]["imbalance"],
                "cv": report["skew"]["cv"],
            }
        )
        cluster.close()
    return rows


def run_partial_view_sweep(
    dataset: str, jobs: int, node_sweep=NODE_SWEEP
) -> tuple[list[dict], bool]:
    """The pinned-seed partial-view grid; checks monotonicity."""
    cells = list(
        cluster_grid_cells(
            dataset=dataset,
            attacks=("locality",),
            nodes=tuple(node_sweep),
            routings=("ring",),
            leakage_rate=LEAKAGE_RATE,
            seed=7,
        )
    )
    cache = os.environ.get("REPRO_FIGURE_CACHE")
    results = Runner(jobs=jobs, cache=cache).run_cells(cells)
    table = rows_from(results, CLUSTER_GRID_COLUMNS)
    rows = [dict(zip(CLUSTER_GRID_COLUMNS, row)) for row in table]
    rates = [row["inference_rate"] for row in rows]
    monotone = all(
        later <= earlier for earlier, later in zip(rates, rates[1:])
    )
    return rows, monotone


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small key stream + synthetic workload (CI smoke)",
    )
    parser.add_argument(
        "--keys", type=int, default=None, help="rebalance key-stream size"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_FIGURE_JOBS", "1")),
        help="worker processes for the partial-view sweep",
    )
    parser.add_argument("--json", metavar="FILE", help="write results JSON")
    args = parser.parse_args(argv)

    num_keys = args.keys
    if num_keys is None:
        num_keys = QUICK_KEYS if args.quick else DEFAULT_KEYS
    dataset = "synthetic" if args.quick else "fsl"

    rebalance_rows, rebalance_ok = run_rebalance(num_keys)
    print(
        f"{'routing':<8} {'keys':>8} {'moved':>8} {'fraction':>9} "
        f"{'theory':>7} {'bound':>6}"
    )
    for row in rebalance_rows:
        print(
            f"{row['routing']:<8} {row['total_keys']:>8,} "
            f"{row['moved_keys']:>8,} {row['moved_fraction']:>9.4f} "
            f"{row['theoretical_fraction']:>7.4f} "
            f"{'ok' if row['within_bound'] else 'FAIL':>6}"
        )

    skew_rows = run_skew(num_keys)
    for row in skew_rows:
        print(
            f"skew {row['routing']:<8} {row['nodes']} nodes: "
            f"imbalance {row['imbalance']:.3f}x  cv {row['cv']:.3f}"
        )

    sweep_rows, monotone = run_partial_view_sweep(dataset, args.jobs)
    print(
        f"\npartial view ({dataset}, locality attack, "
        f"{LEAKAGE_RATE:.1%} leakage, node 0 compromised):"
    )
    print(f"{'nodes':>6} {'shard %':>8} {'inference rate':>15}")
    for row in sweep_rows:
        print(
            f"{row['nodes']:>6} {row['shard_fraction']:>8.2%} "
            f"{row['inference_rate']:>15.5f}"
        )

    failures = []
    if not rebalance_ok:
        failures.append(
            "FAIL: ring rebalance moved more keys than the 1/N bound"
        )
    if not monotone:
        failures.append(
            "FAIL: partial-view inference rate increased with cluster size"
        )
    for failure in failures:
        print(failure)
    if not failures:
        print(
            "rebalance within the 1/N bound; partial-view inference "
            "monotonically non-increasing in cluster size"
        )

    if args.json:
        payload = {
            "keys": num_keys,
            "dataset": dataset,
            "leakage_rate": LEAKAGE_RATE,
            "rebalance": rebalance_rows,
            "skew": skew_rows,
            "partial_view": sweep_rows,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote -> {args.json}")
    return 1 if failures else 0


# -- pytest-benchmark entry points -------------------------------------------


def bench_cluster_rebalance(benchmark):
    def run():
        rows, ok = run_rebalance(QUICK_KEYS)
        assert ok
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[0]["moved_fraction"] < rows[1]["moved_fraction"]


def bench_cluster_partial_view(benchmark):
    def run():
        rows, monotone = run_partial_view_sweep(
            "synthetic", jobs=1, node_sweep=(1, 2, 4)
        )
        assert monotone
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows[0]["inference_rate"] > 0.0


if __name__ == "__main__":
    raise SystemExit(main())
