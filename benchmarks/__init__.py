"""Figure-regeneration benchmarks (one module per paper figure)."""
