"""Microbenchmarks of the hot substrates (true pytest-benchmark timing).

These are conventional repeated-timing benchmarks (unlike the figure
benches, which run an experiment once): chunking throughput, the attacks'
COUNT pass, FREQ-ANALYSIS, the DDFS per-chunk path, and MinHash pipeline
encryption. They guard against performance regressions in the code paths
every experiment leans on.
"""

import random

from repro.analysis.workloads import fsl_series
from repro.attacks.frequency import count_with_neighbors, freq_analysis
from repro.chunking import ChunkerSpec, GearChunker, RabinChunker
from repro.crypto.mle import ConvergentEncryption
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.storage.ddfs import DDFSEngine

_SPEC = ChunkerSpec(min_size=2048, avg_size=8192, max_size=65536)
_DATA = random.Random(0).randbytes(1 << 20)


def bench_micro_gear_chunking_1mib(benchmark):
    chunker = GearChunker(_SPEC)
    cuts = benchmark(chunker.cut_points, _DATA)
    assert cuts[-1] == len(_DATA)


def bench_micro_rabin_chunking_256kib(benchmark):
    chunker = RabinChunker(_SPEC)
    data = _DATA[: 256 * 1024]
    cuts = benchmark(chunker.cut_points, data)
    assert cuts[-1] == len(data)


def bench_micro_count_with_neighbors(benchmark):
    backup = fsl_series().backups[-1]
    stats = benchmark(count_with_neighbors, backup)
    assert stats.unique_chunks > 1000


def bench_micro_freq_analysis(benchmark):
    backup = fsl_series().backups[-1]
    stats = count_with_neighbors(backup)
    pairs = benchmark(
        freq_analysis, stats.frequencies, stats.frequencies, 1000
    )
    assert len(pairs) == 1000


def bench_micro_mle_chunk_encrypt(benchmark):
    scheme = ConvergentEncryption()
    chunk = _DATA[:8192]
    ciphertext, _ = benchmark(scheme.encrypt_chunk, chunk)
    assert ciphertext.size >= len(chunk)


def bench_micro_defense_pipeline_combined(benchmark):
    series = fsl_series()
    pipeline = DefensePipeline(DefenseScheme.COMBINED, seed=7)
    encrypted = benchmark.pedantic(
        lambda: pipeline.encrypt_backup(series.backups[0], 0),
        rounds=3,
        iterations=1,
    )
    assert len(encrypted.ciphertext) == len(series.backups[0])


def bench_micro_ddfs_backup(benchmark):
    series = fsl_series()
    backup = series.backups[0]

    def run():
        engine = DDFSEngine(
            cache_budget_bytes=1 << 20,
            bloom_capacity=200_000,
        )
        return engine.process_backup(backup)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.total_chunks == len(backup)
