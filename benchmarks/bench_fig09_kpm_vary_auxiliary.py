"""Figure 9: known-plaintext mode (0.05 % leakage), varying auxiliary.

Paper claims (§5.3.3): the recency trend of Figure 5 persists under
leakage, at uniformly higher levels (FSL most-recent auxiliary: 29.1 %
locality / 37.9 % advanced); the advanced attack dominates on
variable-size datasets.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig9_kpm_vary_auxiliary


def bench_fig09_kpm_vary_auxiliary(benchmark, results_dir):
    result = run_figure(benchmark, fig9_kpm_vary_auxiliary, results_dir)

    for dataset in ("fsl", "synthetic"):
        locality = series_of(result, dataset=dataset, attack="locality")
        advanced = series_of(result, dataset=dataset, attack="advanced")
        assert advanced[-1] >= locality[-1] * 0.9, dataset
        assert locality[-1] >= locality[0], dataset

    fsl_locality = series_of(result, dataset="fsl", attack="locality")
    assert fsl_locality[-1] > 0.10  # paper: 29.1%

    vm_locality = series_of(result, dataset="vm", attack="locality")
    assert vm_locality[-1] > vm_locality[0]
    assert vm_locality[-1] > 0.08  # paper: 17.6%
