"""Figure 14: metadata access with the *sufficient* fingerprint cache.

Paper claims (§7.4.2): enlarging the cache sharply reduces loading access
for both schemes (22 % / 29 % at paper scale; much more at bench scale
where the large cache retains every fingerprint). The paper additionally
observes the combined scheme becoming 6.4–20 % *cheaper* than MLE; our
reproduction does not recover that inversion beyond the first backup —
the combined scheme's extra unique chunks cost update accesses that are
not offset at steady state — which EXPERIMENTS.md discusses as a known
divergence.
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import (
    fig13_metadata_small_cache,
    fig14_metadata_large_cache,
)


def bench_fig14_metadata_large_cache(benchmark, results_dir):
    result = run_figure(benchmark, fig14_metadata_large_cache, results_dir)
    small = fig13_metadata_small_cache()

    # The large cache cuts total metadata access for both schemes.
    for scheme in ("mle", "combined"):
        large_total = sum(series_of(result, scheme=scheme)[1:])
        small_total = sum(series_of(small, scheme=scheme)[1:])
        assert large_total < small_total, scheme

    # First backup: combined cheaper than MLE, as with the small cache.
    mle_total = series_of(result, scheme="mle")
    combined_total = series_of(result, scheme="combined")
    assert combined_total[0] < mle_total[0]

    # Loading access specifically collapses once the cache retains the
    # whole fingerprint population.
    for scheme in ("mle", "combined"):
        rows = [row for row in result.rows if row[0] == scheme]
        loading_last = rows[-1][4]
        small_rows = [row for row in small.rows if row[0] == scheme]
        assert loading_last < small_rows[-1][4], scheme
