"""Figure 13: metadata access with the *insufficient* fingerprint cache.

Paper claims (§7.4.2):
* loading access (whole-container fingerprint prefetches) dominates the
  total metadata access (> 74 % for both schemes);
* the combined scheme is *cheaper* than MLE on the first backup (it stores
  more unique chunks, which skip the loading path);
* on subsequent backups the combined scheme's overhead over MLE stays
  small (paper: ≤ 1.2 %; bench-scale bound is looser because the workload
  is ~10³× smaller — see EXPERIMENTS.md).
"""

from benchmarks.conftest import run_figure, series_of
from repro.analysis.figures import fig13_metadata_small_cache


def bench_fig13_metadata_small_cache(benchmark, results_dir):
    result = run_figure(benchmark, fig13_metadata_small_cache, results_dir)

    mle_total = series_of(result, scheme="mle")
    combined_total = series_of(result, scheme="combined")

    # First backup: combined cheaper (more uniques -> fewer loads).
    assert combined_total[0] < mle_total[0]

    # Steady state: bounded overhead.
    for mle, combined in zip(mle_total[1:], combined_total[1:]):
        assert combined < mle * 1.5, (mle, combined)

    # Loading dominates for both schemes on the last backup.
    for scheme in ("mle", "combined"):
        rows = [row for row in result.rows if row[0] == scheme]
        _, _, update, index, loading, total = rows[-1]
        assert loading / total > 0.5, (scheme, rows[-1])
        assert index < update + loading
