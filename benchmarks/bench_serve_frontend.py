"""Socket-frontend bench: served req/s and latency over real sockets.

Two phases, both against the asyncio framed-protocol frontend
(:mod:`repro.service.frontend`) on a Unix socket:

1. **identity** — replay a seeded trace in stream order over one
   connection and assert the served trace is byte-identical to the
   in-process simulator (:func:`repro.service.frontend.identity_check`),
   including a quota-constrained config so the rejection paths are
   exercised end to end.  A perf number for a frontend that diverges
   from the engine it fronts would be meaningless, so this gate runs
   first and hard-fails the bench.
2. **load** — drive the frontend with the multi-process load generator
   (:func:`repro.service.loadgen.run_loadgen`): the default shape opens
   1,000 tenant sessions (250 tenants x 4 rounds, one connection per
   tenant-round) from 2 client processes and reports sustained
   requests/sec plus p50/p90/p99/max request latency.
3. **faulted** — the identity replay again, but under a standard fault
   plan (periodic server-side drops, one lost answer, a stall) with the
   retrying client: asserts the served trace *stays* byte-identical,
   then reports effective req/s, the retry amplification
   (retries / requests), and the p99 delta vs the clean load run.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_frontend.py
    PYTHONPATH=src python benchmarks/bench_serve_frontend.py --quick
    PYTHONPATH=src python benchmarks/bench_serve_frontend.py \
        --output BENCH_serve_frontend.json --compare BENCH_serve_frontend.json

``--output`` writes the committed-baseline JSON; ``--compare`` soft-reports
throughput/latency deltas against an earlier baseline (timings are
machine-dependent, so deltas inform rather than fail).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile

from repro import faults
from repro.service.frontend import (
    FrontendServer,
    build_frontend,
    identity_check,
)
from repro.service.loadgen import RetryPolicy, replay_stream, run_loadgen
from repro.service.simulate import ServiceConfig, simulate

try:  # pytest imports this module as benchmarks.bench_serve_frontend
    from benchmarks.conftest import bench_envelope
except ImportError:  # standalone: benchmarks/ itself is on sys.path
    from conftest import bench_envelope

# Load shape: tenants x rounds = tenant sessions (one connection each).
# 250 x 4 = 1,000 sessions, the acceptance floor; small uploads keep the
# bench about serving cost, not chunk-stream volume.
FULL_TENANTS, FULL_ROUNDS = 250, 4
QUICK_TENANTS, QUICK_ROUNDS = 40, 2
LOAD_SHAPE = {"files_per_tenant": 4, "mean_file_chunks": 8, "seed": 11}


def identity_phase() -> dict[str, object]:
    """Differential gate: served trace == simulated trace, byte for byte."""
    results = {}
    configs = {
        "plain": ServiceConfig(tenants=8, rounds=3, seed=7),
        "quota": ServiceConfig(
            tenants=8, rounds=3, quota_bytes=2_000_000, seed=7
        ),
    }
    for name, config in configs.items():
        simulate.cache_clear()
        frontend = build_frontend(config)
        scratch = tempfile.mkdtemp(prefix="bench-serve-id-")
        try:
            address = ("unix", os.path.join(scratch, "frontend.sock"))
            with FrontendServer(frontend, address) as bound:
                counts = replay_stream(bound, config)
            check = identity_check(frontend)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        assert check["identical"], (
            f"served trace diverged from the simulator ({name} config)"
        )
        assert counts["errors"] == 0, f"unexpected wire errors: {counts}"
        results[name] = {
            "requests": counts["requests"],
            "rejected_uploads": counts["rejected_uploads"],
            "skipped_restores": counts["skipped_restores"],
            "identical": True,
        }
        print(
            f"identity[{name}]: {counts['requests']} requests replayed, "
            f"{counts['rejected_uploads']} quota-rejected -> "
            "byte-identical to simulator"
        )
    return results


def load_phase(tenants: int, rounds: int, processes: int) -> dict[str, object]:
    """Multi-process load generation against one served frontend."""
    config = ServiceConfig(tenants=tenants, rounds=rounds, **LOAD_SHAPE)
    frontend = build_frontend(config)
    scratch = tempfile.mkdtemp(prefix="bench-serve-load-")
    try:
        address = ("unix", os.path.join(scratch, "frontend.sock"))
        with FrontendServer(frontend, address) as bound:
            report = run_loadgen(bound, config, processes=processes)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    assert report["errors"] == {}, f"load run hit errors: {report['errors']}"
    assert report["ok"] == report["requests"]
    latency = report["latency_ms"]
    print(
        f"load: {report['sessions']} tenant sessions from "
        f"{report['processes']} client processes  "
        f"{report['requests']} requests in {report['elapsed_s']:.2f}s  "
        f"sustained {report['requests_per_s']:.0f} req/s"
    )
    print(
        f"latency: p50 {latency['p50']:.2f}ms  p90 {latency['p90']:.2f}ms  "
        f"p99 {latency['p99']:.2f}ms  max {latency['max']:.2f}ms"
    )
    return report


# The standard chaos shape: periodic server-side connection drops, one
# lost answer (processed but never delivered — the rid-replay case), and
# periodic stalls.  All server-side, so one plan covers every client
# process without coordinating injector state across forks.
FAULT_RULES = [
    {"site": "serve.drop", "every": 41, "times": 8},
    {"site": "serve.drop", "at": 13, "times": 1, "when": "after"},
    {"site": "serve.stall", "every": 83, "times": 4, "delay_s": 0.005},
]


def faulted_phase(
    tenants: int, rounds: int, processes: int, clean_load: dict
) -> dict[str, object]:
    """The load run again, under the standard fault plan with retries.

    Gates on byte-identity first (a faulted replay that diverges from
    the simulator makes the perf numbers meaningless), then reports the
    effective throughput, the retry amplification (retries / requests),
    and the p99 delta against the clean load phase.
    """
    plan = {"seed": 7, "rules": FAULT_RULES}

    # Identity gate: the retrying client under the plan still serves a
    # byte-identical trace.
    config = ServiceConfig(tenants=8, rounds=3, seed=7)
    simulate.cache_clear()
    frontend = build_frontend(config)
    scratch = tempfile.mkdtemp(prefix="bench-serve-chaos-id-")
    faults.install(faults.FaultPlan.from_dict(plan))
    try:
        address = ("unix", os.path.join(scratch, "frontend.sock"))
        with FrontendServer(frontend, address) as bound:
            counts = replay_stream(bound, config, retry=RetryPolicy(seed=1))
        check = identity_check(frontend)
    finally:
        faults.clear()
        shutil.rmtree(scratch, ignore_errors=True)
    assert check["identical"], "faulted replay diverged from the simulator"
    assert counts["gave_up"] == 0, f"retry budget exhausted: {counts}"

    # Perf under fire: same load shape as the clean phase.
    config = ServiceConfig(tenants=tenants, rounds=rounds, **LOAD_SHAPE)
    frontend = build_frontend(config)
    scratch = tempfile.mkdtemp(prefix="bench-serve-chaos-load-")
    injector = faults.install(faults.FaultPlan.from_dict(plan))
    try:
        address = ("unix", os.path.join(scratch, "frontend.sock"))
        with FrontendServer(frontend, address) as bound:
            report = run_loadgen(
                bound, config, processes=processes, retry=RetryPolicy(seed=1)
            )
        injected = sum(
            site["fired"] for site in injector.summary()["sites"].values()
        )
    finally:
        faults.clear()
        shutil.rmtree(scratch, ignore_errors=True)
    retries = report["retries"]
    assert retries["gave_up"] == 0, f"load run gave up requests: {retries}"
    assert report["ok"] == report["requests"], report["errors"]
    amplification = (
        retries["retries"] / report["requests"] if report["requests"] else 0.0
    )
    clean_p99 = clean_load["latency_ms"]["p99"]
    p99 = report["latency_ms"]["p99"]
    p99_delta_pct = (p99 - clean_p99) / clean_p99 * 100 if clean_p99 else 0.0
    print(
        f"faulted: {injected} faults injected  {retries['retries']} retries "
        f"({amplification * 100:.2f}% amplification)  "
        f"{report['requests_per_s']:.0f} req/s  "
        f"p99 {p99:.2f}ms ({p99_delta_pct:+.1f}% vs clean)"
    )
    return {
        "plan": plan,
        "identity": {"replay_retries": counts["retries"], "identical": True},
        "faults_injected": injected,
        "retries": retries,
        "retry_amplification": round(amplification, 6),
        "requests_per_s": report["requests_per_s"],
        "latency_ms": report["latency_ms"],
        "p99_delta_pct_vs_clean": round(p99_delta_pct, 1),
    }


def compare(current: dict, baseline_path: str) -> None:
    """Soft-report throughput/latency deltas vs a committed baseline."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)["load"]
    for label, pick in (
        ("req/s", lambda r: r["requests_per_s"]),
        ("p99 ms", lambda r: r["latency_ms"]["p99"]),
    ):
        then, now = pick(baseline), pick(current)
        delta = (now - then) / then * 100 if then else 0.0
        print(f"vs baseline {label}: {then:.2f} -> {now:.2f} ({delta:+.1f}%)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small load shape ({QUICK_TENANTS}x{QUICK_ROUNDS} sessions)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=2,
        help="load-generator client processes (default 2)",
    )
    parser.add_argument(
        "--output", metavar="FILE", help="write the baseline JSON to FILE"
    )
    parser.add_argument(
        "--compare",
        metavar="FILE",
        help="soft-report deltas vs a baseline JSON",
    )
    args = parser.parse_args(argv)
    tenants = QUICK_TENANTS if args.quick else FULL_TENANTS
    rounds = QUICK_ROUNDS if args.quick else FULL_ROUNDS

    identity = identity_phase()
    load = load_phase(tenants, rounds, processes=max(2, args.processes))
    if not args.quick:
        assert load["sessions"] >= 1000, (
            f"acceptance floor: expected >= 1000 tenant sessions, "
            f"got {load['sessions']}"
        )
    faulted = faulted_phase(
        tenants, rounds, processes=max(2, args.processes), clean_load=load
    )
    payload = {
        "env": bench_envelope(),
        "version": "1.1.0",
        "python": platform.python_version(),
        "platform": platform.machine(),
        "quick": args.quick,
        "identity": identity,
        "load": load,
        "faulted": faulted,
    }
    if args.compare and os.path.exists(args.compare):
        compare(load, args.compare)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
