"""Socket-frontend bench: served req/s and latency over real sockets.

Two phases, both against the asyncio framed-protocol frontend
(:mod:`repro.service.frontend`) on a Unix socket:

1. **identity** — replay a seeded trace in stream order over one
   connection and assert the served trace is byte-identical to the
   in-process simulator (:func:`repro.service.frontend.identity_check`),
   including a quota-constrained config so the rejection paths are
   exercised end to end.  A perf number for a frontend that diverges
   from the engine it fronts would be meaningless, so this gate runs
   first and hard-fails the bench.
2. **load** — drive the frontend with the multi-process load generator
   (:func:`repro.service.loadgen.run_loadgen`): the default shape opens
   1,000 tenant sessions (250 tenants x 4 rounds, one connection per
   tenant-round) from 2 client processes and reports sustained
   requests/sec plus p50/p90/p99/max request latency.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_frontend.py
    PYTHONPATH=src python benchmarks/bench_serve_frontend.py --quick
    PYTHONPATH=src python benchmarks/bench_serve_frontend.py \
        --output BENCH_serve_frontend.json --compare BENCH_serve_frontend.json

``--output`` writes the committed-baseline JSON; ``--compare`` soft-reports
throughput/latency deltas against an earlier baseline (timings are
machine-dependent, so deltas inform rather than fail).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile

from repro.service.frontend import (
    FrontendServer,
    build_frontend,
    identity_check,
)
from repro.service.loadgen import replay_stream, run_loadgen
from repro.service.simulate import ServiceConfig, simulate

try:  # pytest imports this module as benchmarks.bench_serve_frontend
    from benchmarks.conftest import bench_envelope
except ImportError:  # standalone: benchmarks/ itself is on sys.path
    from conftest import bench_envelope

# Load shape: tenants x rounds = tenant sessions (one connection each).
# 250 x 4 = 1,000 sessions, the acceptance floor; small uploads keep the
# bench about serving cost, not chunk-stream volume.
FULL_TENANTS, FULL_ROUNDS = 250, 4
QUICK_TENANTS, QUICK_ROUNDS = 40, 2
LOAD_SHAPE = {"files_per_tenant": 4, "mean_file_chunks": 8, "seed": 11}


def identity_phase() -> dict[str, object]:
    """Differential gate: served trace == simulated trace, byte for byte."""
    results = {}
    configs = {
        "plain": ServiceConfig(tenants=8, rounds=3, seed=7),
        "quota": ServiceConfig(
            tenants=8, rounds=3, quota_bytes=2_000_000, seed=7
        ),
    }
    for name, config in configs.items():
        simulate.cache_clear()
        frontend = build_frontend(config)
        scratch = tempfile.mkdtemp(prefix="bench-serve-id-")
        try:
            address = ("unix", os.path.join(scratch, "frontend.sock"))
            with FrontendServer(frontend, address) as bound:
                counts = replay_stream(bound, config)
            check = identity_check(frontend)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        assert check["identical"], (
            f"served trace diverged from the simulator ({name} config)"
        )
        assert counts["errors"] == 0, f"unexpected wire errors: {counts}"
        results[name] = {
            "requests": counts["requests"],
            "rejected_uploads": counts["rejected_uploads"],
            "skipped_restores": counts["skipped_restores"],
            "identical": True,
        }
        print(
            f"identity[{name}]: {counts['requests']} requests replayed, "
            f"{counts['rejected_uploads']} quota-rejected -> "
            "byte-identical to simulator"
        )
    return results


def load_phase(tenants: int, rounds: int, processes: int) -> dict[str, object]:
    """Multi-process load generation against one served frontend."""
    config = ServiceConfig(tenants=tenants, rounds=rounds, **LOAD_SHAPE)
    frontend = build_frontend(config)
    scratch = tempfile.mkdtemp(prefix="bench-serve-load-")
    try:
        address = ("unix", os.path.join(scratch, "frontend.sock"))
        with FrontendServer(frontend, address) as bound:
            report = run_loadgen(bound, config, processes=processes)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    assert report["errors"] == {}, f"load run hit errors: {report['errors']}"
    assert report["ok"] == report["requests"]
    latency = report["latency_ms"]
    print(
        f"load: {report['sessions']} tenant sessions from "
        f"{report['processes']} client processes  "
        f"{report['requests']} requests in {report['elapsed_s']:.2f}s  "
        f"sustained {report['requests_per_s']:.0f} req/s"
    )
    print(
        f"latency: p50 {latency['p50']:.2f}ms  p90 {latency['p90']:.2f}ms  "
        f"p99 {latency['p99']:.2f}ms  max {latency['max']:.2f}ms"
    )
    return report


def compare(current: dict, baseline_path: str) -> None:
    """Soft-report throughput/latency deltas vs a committed baseline."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)["load"]
    for label, pick in (
        ("req/s", lambda r: r["requests_per_s"]),
        ("p99 ms", lambda r: r["latency_ms"]["p99"]),
    ):
        then, now = pick(baseline), pick(current)
        delta = (now - then) / then * 100 if then else 0.0
        print(f"vs baseline {label}: {then:.2f} -> {now:.2f} ({delta:+.1f}%)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small load shape ({QUICK_TENANTS}x{QUICK_ROUNDS} sessions)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=2,
        help="load-generator client processes (default 2)",
    )
    parser.add_argument(
        "--output", metavar="FILE", help="write the baseline JSON to FILE"
    )
    parser.add_argument(
        "--compare",
        metavar="FILE",
        help="soft-report deltas vs a baseline JSON",
    )
    args = parser.parse_args(argv)
    tenants = QUICK_TENANTS if args.quick else FULL_TENANTS
    rounds = QUICK_ROUNDS if args.quick else FULL_ROUNDS

    identity = identity_phase()
    load = load_phase(tenants, rounds, processes=max(2, args.processes))
    if not args.quick:
        assert load["sessions"] >= 1000, (
            f"acceptance floor: expected >= 1000 tenant sessions, "
            f"got {load['sessions']}"
        )
    payload = {
        "env": bench_envelope(),
        "version": "1.0.0",
        "python": platform.python_version(),
        "platform": platform.machine(),
        "quick": args.quick,
        "identity": identity,
        "load": load,
    }
    if args.compare and os.path.exists(args.compare):
        compare(load, args.compare)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
