#!/usr/bin/env python3
"""Multi-tenant service demo: shared dedup, bandwidth leaks, inference.

The paper's adversary lives in a *shared* encrypted dedup store. This
example builds exactly that setting:

1. synthesize 16 tenants whose files overlap through Zipf-popular shared
   content (`TrafficModel`);
2. serve their interleaved upload/restore traffic through one shared
   dedup engine with per-tenant namespaces (`DedupService`);
3. meter what an adversary on the wire sees — upload bandwidth shrinks
   exactly by what *other* tenants already stored (`SideChannelMeter`);
4. run the paper's advanced frequency attack cross-tenant: the provider
   (population auxiliary) infers a sizeable fraction of a tenant's
   chunks, and the signal collapses when cross-user duplication does.

Run:  PYTHONPATH=src python examples/multi_tenant_service.py
"""

from repro.service import (
    DedupService,
    ServiceConfig,
    SideChannelMeter,
    TrafficConfig,
    TrafficModel,
    service_report,
)


def main() -> None:
    # 1. + 2. Synthesize the population and serve its traffic.
    config = TrafficConfig(tenants=16, rounds=2, duplication_factor=0.6)
    model = TrafficModel(seed=42, config=config)
    service = DedupService()
    meter = SideChannelMeter()
    print("serving 16 tenants' interleaved traffic...")
    for request in model.requests():
        if request.kind == "upload":
            meter.observe_upload(
                request,
                service.upload(request.tenant, request.backup, request.label),
            )
        else:
            observables, _ = service.restore(
                request.tenant, request.restore_label
            )
            meter.observe_restore(observables)

    # 3. The bandwidth side channel: each upload transfers only what the
    #    shared store lacks, so round-0 savings are all cross-user.
    print("\nper-upload bandwidth signal (first 5 round-0 uploads):")
    rows = [row for row in meter.bandwidth_signal() if row["round"] == 0]
    for row in rows[:5]:
        print(
            f"  {row['label']}: {row['logical_bytes']:>9,} B logical, "
            f"{row['transferred_bytes']:>9,} B on the wire "
            f"({row['dedup_fraction']:.0%} already stored by others)"
        )
    overlap = meter.overlap_summary()
    print(
        f"cross-tenant chunk overlap: mean {overlap['mean']:.1%}, "
        f"max {overlap['max']:.1%}"
    )

    # 4. Cross-tenant inference: the curious provider attacks tenant 3.
    from repro.attacks import AdvancedLocalityAttack

    report = meter.evaluate(
        AdvancedLocalityAttack(u=1, v=15, w=200_000),
        auxiliary_tenant=None,  # population auxiliary
        target_tenant=3,
    )
    print(
        f"\nadvanced attack vs tenant 3 (population auxiliary): "
        f"{report.inference_rate:.1%} of its unique chunks inferred "
        f"({report.correct_pairs}/{report.unique_ciphertext_chunks})"
    )

    # The one-call version, with the duplication-factor ablation: less
    # cross-user duplication, less leakage.
    for factor in (0.6, 0.1):
        summary = service_report(
            ServiceConfig(tenants=16, duplication_factor=factor, seed=42)
        )
        print(
            f"duplication factor {factor}: mean cross-tenant inference "
            f"rate {summary['attack']['mean_inference_rate']:.1%}"
        )


if __name__ == "__main__":
    main()
