#!/usr/bin/env python3
"""Scenario: choosing a defense — security vs storage vs metadata cost.

Sweeps the four pipeline configurations (deterministic MLE, MinHash only,
scrambling only, combined) over one workload and reports, per scheme:

* inference rate of the strongest attack (advanced, 0.2 % leakage);
* cumulative storage saving after all backups (Fig. 11's metric);
* DDFS metadata access for the final backup (Fig. 13's metric).

This reproduces the paper's bottom line: the combined scheme buys near-
total suppression for a few points of storage saving and a small metadata
overhead.

Run:  python examples/defense_tradeoffs.py
"""

from repro.analysis.workloads import scaled_segmentation, storage_fsl_series
from repro.attacks import AdvancedLocalityAttack, AttackEvaluator, BasicAttack
from repro.common.units import MiB, format_size
from repro.datasets.stats import storage_savings
from repro.defenses import DefensePipeline, DefenseScheme
from repro.storage import DDFSEngine


def main() -> None:
    series = storage_fsl_series()
    segmentation = scaled_segmentation(series)
    print(
        f"workload: {len(series)} backups, "
        f"{format_size(series.logical_bytes)} logical, "
        f"dedup ratio {series.dedup_ratio():.1f}x\n"
    )
    header = (
        f"{'scheme':<10s} {'advanced KPM':>13s} {'basic attack':>13s} "
        f"{'storage saving':>15s} {'meta access (last)':>19s}"
    )
    print(header)
    print("-" * len(header))

    for scheme in DefenseScheme:
        pipeline = DefensePipeline(scheme, segmentation=segmentation, seed=7)
        encrypted = pipeline.encrypt_series(series)
        evaluator = AttackEvaluator(encrypted)

        advanced = evaluator.run(
            AdvancedLocalityAttack(u=1, v=15, w=500_000),
            auxiliary=2,
            target=-1,
            leakage_rate=0.002,
        )
        basic = evaluator.run(BasicAttack(), auxiliary=2, target=-1)
        saving = storage_savings([b.ciphertext for b in encrypted.backups])[-1]

        engine = DDFSEngine(
            cache_budget_bytes=512 * 1024,
            bloom_capacity=200_000,
            container_size=4 * MiB,
        )
        reports = engine.process_series(
            [b.ciphertext for b in encrypted.backups]
        )
        meta = reports[-1].metadata.total_bytes

        print(
            f"{scheme.value:<10s} {advanced.inference_rate:>13.2%} "
            f"{basic.inference_rate:>13.3%} {saving:>15.1%} "
            f"{format_size(meta):>19s}"
        )

    print(
        "\nreading the table: scrambling alone kills the locality signal "
        "but keeps deterministic encryption (frequency ranks still leak to "
        "a frequency-only adversary); MinHash alone perturbs frequencies "
        "but keeps order. The combined scheme closes both channels for a "
        "few points of storage saving and a small metadata premium."
    )


if __name__ == "__main__":
    main()
