#!/usr/bin/env python3
"""Quickstart: generate a backup workload, encrypt it, attack it, defend it.

This walks the paper's whole story in ~60 lines of API calls:

1. generate an FSL-like backup series (six users, five monthly fulls);
2. encrypt it with deterministic MLE (the vulnerable baseline);
3. run the three inference attacks of §4 with the paper's parameters;
4. re-encrypt under the combined MinHash + scrambling defense (§6) and
   show the attack collapsing.

Run:  python examples/quickstart.py
"""

from repro.analysis.workloads import scaled_segmentation
from repro.attacks import (
    AdvancedLocalityAttack,
    AttackEvaluator,
    BasicAttack,
    LocalityAttack,
)
from repro.datasets import FSLDatasetGenerator
from repro.defenses import DefensePipeline, DefenseScheme


def main() -> None:
    # 1. Workload: six users' home directories, five monthly full backups.
    print("generating FSL-like backup series...")
    series = FSLDatasetGenerator(seed=20130122).generate()
    print(
        f"  {len(series)} backups, "
        f"{sum(len(b) for b in series.backups):,} chunk records, "
        f"dedup ratio {series.dedup_ratio():.1f}x"
    )

    # 2. Deterministic MLE: identical plaintext chunks -> identical
    #    ciphertext chunks. Deduplication works; frequencies leak.
    pipeline = DefensePipeline(
        DefenseScheme.MLE, segmentation=scaled_segmentation(series)
    )
    encrypted = pipeline.encrypt_series(series)
    evaluator = AttackEvaluator(encrypted)

    # 3. The adversary knows the plaintext of the April backup (auxiliary
    #    information) and sees the ciphertext of the May backup.
    print("\nattacking deterministic MLE (aux = Apr 21, target = May 21):")
    for attack in (
        BasicAttack(),
        LocalityAttack(u=1, v=15, w=200_000),
        AdvancedLocalityAttack(u=1, v=15, w=200_000),
    ):
        report = evaluator.run(attack, auxiliary=-2, target=-1)
        print(
            f"  {attack.name:9s} inference rate = "
            f"{report.inference_rate:7.2%}   "
            f"({report.correct_pairs:,}/{report.unique_ciphertext_chunks:,} "
            f"unique chunks)"
        )

    # 4. Same attack against the combined MinHash + scrambling defense.
    defended = DefensePipeline(
        DefenseScheme.COMBINED, segmentation=scaled_segmentation(series)
    ).encrypt_series(series)
    report = AttackEvaluator(defended).run(
        AdvancedLocalityAttack(u=1, v=15, w=200_000), auxiliary=-2, target=-1
    )
    print(
        f"\nunder the combined defense the advanced attack infers "
        f"{report.inference_rate:.2%} — the leakage is gone."
    )


if __name__ == "__main__":
    main()
