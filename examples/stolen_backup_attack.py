#!/usr/bin/env python3
"""Scenario: known-plaintext attack from a stolen device (§3.3, §5.3.3).

The paper's motivating threat: an adversary obtains a *prior* backup's
plaintext (auxiliary information) plus a small number of leaked
ciphertext-plaintext pairs about the *latest* backup — say, from a stolen
laptop that still held a few chunks with their storage tags. This example
shows how a 0.05-0.2 % leak amplifies into inference of a quarter of the
latest backup, and how the adversary could target "critical chunks":
inferring which ciphertext chunks correspond to known plaintext lets them
corrupt exactly those chunks and make the plaintext unrecoverable.

Run:  python examples/stolen_backup_attack.py
"""

from repro.analysis.workloads import scaled_segmentation
from repro.attacks import AdvancedLocalityAttack, AttackEvaluator, LocalityAttack
from repro.attacks.evaluation import sample_leakage
from repro.datasets import FSLDatasetGenerator
from repro.defenses import DefensePipeline, DefenseScheme


def main() -> None:
    series = FSLDatasetGenerator(seed=20130122).generate()
    pipeline = DefensePipeline(
        DefenseScheme.MLE, segmentation=scaled_segmentation(series)
    )
    encrypted = pipeline.encrypt_series(series)
    evaluator = AttackEvaluator(encrypted)
    target = encrypted[-1]

    print("known-plaintext mode: aux = Mar 22, target = May 21")
    print(f"target backup: {target.unique_ciphertext_chunks:,} unique chunks\n")
    print(
        f"{'leakage':>10s} {'leaked pairs':>13s} {'inferred':>10s} "
        f"{'amplification':>14s}"
    )
    for leakage_rate in (0.0, 0.0005, 0.001, 0.002):
        report = evaluator.run(
            LocalityAttack(u=1, v=15, w=500_000),
            auxiliary=2,
            target=-1,
            leakage_rate=leakage_rate,
        )
        amplification = (
            report.inference_rate / leakage_rate if leakage_rate else float("nan")
        )
        print(
            f"{leakage_rate:10.2%} {report.leaked_pairs:13,} "
            f"{report.inference_rate:10.2%} {amplification:13.0f}x"
        )

    # Critical-chunk identification: the adversary holds the plaintext of
    # one "password file" from the prior backup and wants to find its
    # ciphertext chunks in the latest backup (to corrupt them).
    print("\ncritical-chunk identification:")
    leaked = sample_leakage(target, 0.0005, seed=1)
    report_attack = AdvancedLocalityAttack(u=1, v=15, w=500_000)
    result = report_attack.run(
        target.ciphertext, series.backups[2], leaked_pairs=leaked
    )
    # Pretend the 40 chunks of some critical file are known plaintext fps.
    critical_plaintext = set(series.backups[-1].fingerprints[1000:1040])
    identified = {
        cipher_fp
        for cipher_fp, plain_fp in result.pairs.items()
        if plain_fp in critical_plaintext and target.truth.get(cipher_fp) == plain_fp
    }
    print(
        f"  of a 40-chunk critical file, the adversary correctly located "
        f"{len(identified)} ciphertext chunks in the latest backup."
    )
    print(
        "  corrupting those ciphertext chunks would make the critical file "
        "unrecoverable despite encryption."
    )


if __name__ == "__main__":
    main()
