#!/usr/bin/env python3
"""Scenario: operating an encrypted dedup store over its lifecycle.

Day-2 operations the paper's system implies but does not evaluate:

* retiring old backups and reclaiming space with reference-counting GC
  (copy-forward compaction of mostly-dead containers);
* surviving key-manager outages with a k-of-n quorum (Duan-style, §8)
  while keys stay bit-identical to the single-manager deployment;
* measuring restore locality before and after compaction.

Run:  python examples/operating_the_store.py
"""

from repro.common.units import MiB, format_size
from repro.crypto.keymanager import KeyManager
from repro.crypto.quorum import QuorumKeyManager
from repro.datasets import FSLDatasetGenerator
from repro.datasets.fsl import FSLConfig
from repro.defenses import DefensePipeline, DefenseScheme
from repro.storage import DDFSEngine, ReferenceTracker, collect_garbage
from repro.storage.restore_sim import simulate_restore


def main() -> None:
    # --- quorum key management -------------------------------------------
    master = b"organisation-master-secret-32byte"
    quorum = QuorumKeyManager.create(master, threshold=2, num_replicas=4)
    single = KeyManager(master)
    fingerprint = b"\x01\x02\x03\x04\x05\x06"
    assert quorum.derive_key(fingerprint) == single.derive_key(fingerprint)
    quorum.replicas[0].available = False
    quorum.replicas[3].available = False
    key = quorum.derive_key(fingerprint)
    print(
        f"quorum key management: 2 of 4 replicas down, key derivation "
        f"still works ({quorum.live_replicas()} live), key unchanged: "
        f"{key == single.derive_key(fingerprint)}"
    )

    # --- ingest five monthly backups --------------------------------------
    config = FSLConfig(num_users=3, num_backups=5, files_per_user=60)
    series = FSLDatasetGenerator(seed=7, config=config).generate()
    encrypted = DefensePipeline(DefenseScheme.COMBINED, seed=7).encrypt_series(
        series
    )
    engine = DDFSEngine(
        cache_budget_bytes=2 * MiB, bloom_capacity=200_000, container_size=MiB
    )
    tracker = ReferenceTracker()
    for backup in encrypted.backups:
        engine.process_backup(backup.ciphertext)
        tracker.register_backup(backup.ciphertext)
    stored_before = engine.containers.stored_bytes()
    print(
        f"\ningested {len(encrypted.backups)} backups: "
        f"{format_size(stored_before)} stored in "
        f"{engine.containers.num_containers} containers"
    )

    restore_before = simulate_restore(
        engine, encrypted.backups[-1].logical_ciphertext()
    )

    # --- retention: drop the two oldest backups, collect garbage ----------
    for backup in encrypted.backups[:2]:
        died = tracker.delete_backup(backup.ciphertext.label)
        print(f"deleted backup {backup.ciphertext.label!r}: {died:,} chunks died")
    report = collect_garbage(engine, tracker, live_ratio_threshold=0.6)
    print(
        f"gc: scanned {report.containers_scanned} containers, reclaimed "
        f"{report.containers_reclaimed} ({format_size(report.bytes_reclaimed)} "
        f"freed, {format_size(report.bytes_copied_forward)} copied forward)"
    )

    # --- the remaining backups still restore, with similar locality -------
    restore_after = simulate_restore(
        engine, encrypted.backups[-1].logical_ciphertext()
    )
    print(
        f"restore of latest backup: {restore_before.container_reads} container "
        f"reads before gc, {restore_after.container_reads} after"
    )
    missing = sum(
        1
        for fingerprint in encrypted.backups[-1].ciphertext.fingerprints
        if engine.index.container_of(fingerprint) is None
    )
    print(f"live chunks missing after gc: {missing} (must be 0)")
    if missing:
        raise SystemExit("garbage collection lost live data!")


if __name__ == "__main__":
    main()
