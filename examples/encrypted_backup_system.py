#!/usr/bin/env python3
"""Scenario: a real (content-level) encrypted deduplication backup system.

Everything the trace-driven experiments abstract away happens for real
here: bytes are chunked with content-defined chunking, encrypted with
MinHash-derived segment keys from a rate-limited DupLESS-style key
manager, scrambled, deduplicated into 4 MB containers by the DDFS-like
engine, and finally restored byte-for-byte from file recipes + key
recipes.

Run:  python examples/encrypted_backup_system.py
"""

from repro.chunking import ChunkerSpec, GearChunker
from repro.common.units import format_size
from repro.crypto.keymanager import KeyManager, RateLimiter
from repro.crypto.mle import ServerAidedMLE
from repro.datasets.filesystem import build_tree
from repro.datasets.mutate import evolve_tree
from repro.defenses.segmentation import SegmentationSpec
from repro.storage.system import EncryptedDedupSystem


def main() -> None:
    # A DupLESS-style key manager with (generous) online rate limiting.
    limiter = RateLimiter(rate=100.0, burst=10_000.0)
    key_manager = KeyManager(b"system-wide-secret-0123456789abc", limiter)

    system = EncryptedDedupSystem(
        scheme=ServerAidedMLE(key_manager),
        chunker=GearChunker(ChunkerSpec(min_size=1024, avg_size=4096, max_size=16384)),
        use_minhash=True,
        use_scramble=True,
        segmentation=SegmentationSpec(
            min_bytes=32 * 1024, avg_bytes=64 * 1024, max_bytes=128 * 1024
        ),
        container_size=1 << 20,
    )

    # Backup generation 0: a synthetic user tree (with duplicate assets).
    tree = build_tree(seed=42, num_files=20, mean_file_size=48 * 1024)
    print(f"gen 0: {len(tree)} files, {format_size(tree.total_bytes())} logical")
    handles = {}
    for file in tree.iter_files():
        handles[(0, file.path)] = system.put_file(file.path, file.data)
    system.flush()
    print(f"       stored {format_size(system.stored_bytes)} after dedup")

    # Backup generations 1-2: clustered edits + new files.
    trees = [tree]
    for generation in (1, 2):
        trees.append(
            evolve_tree(
                trees[-1], seed=42, generation=generation, modify_fraction=0.25
            )
        )
        before = system.stored_bytes
        for file in trees[-1].iter_files():
            handles[(generation, file.path)] = system.put_file(
                file.path, file.data
            )
        system.flush()
        added = system.stored_bytes - before
        print(
            f"gen {generation}: {format_size(trees[-1].total_bytes())} logical, "
            f"only {format_size(added)} new bytes stored"
        )

    logical = sum(t.total_bytes() for t in trees)
    print(
        f"\ntotals: {format_size(logical)} logical -> "
        f"{format_size(system.stored_bytes)} stored "
        f"(saving {1 - system.stored_bytes / logical:.1%}); "
        f"{system.engine.containers.num_containers} containers; "
        f"{key_manager.queries_served} key-manager queries"
    )

    # Restore and verify every file of every generation.
    failures = 0
    for (generation, path), handle in handles.items():
        restored = system.get_file(handle)
        if restored != trees[generation].get(path).data:
            failures += 1
    total = len(handles)
    print(f"restore check: {total - failures}/{total} files byte-identical")
    if failures:
        raise SystemExit("restore verification failed")


if __name__ == "__main__":
    main()
